//! Minimal Matrix Market (`.mtx`) reader and writer.
//!
//! Supports the `matrix coordinate real/integer/pattern general/symmetric`
//! subset, which covers the University of Florida (SuiteSparse) collection
//! dumps the paper evaluates on. Pattern matrices read as value `1.0`;
//! symmetric matrices are expanded to general storage on read.
//!
//! # Example
//!
//! ```
//! use spacea_matrix::mmio;
//!
//! # fn main() -> Result<(), spacea_matrix::MatrixError> {
//! let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 3.5\n2 2 -1\n";
//! let csr = mmio::read_str(text)?;
//! assert_eq!(csr.nnz(), 2);
//! let round = mmio::write_string(&csr);
//! assert_eq!(mmio::read_str(&round)?, csr);
//! # Ok(())
//! # }
//! ```

use crate::{Coo, Csr, MatrixError};
use std::fmt::Write as _;
use std::fs;
use std::io::Read;
use std::path::Path;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ValueKind {
    Real,
    Integer,
    Pattern,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Symmetry {
    General,
    Symmetric,
}

/// Reads a Matrix Market matrix from a string.
///
/// # Errors
///
/// Returns [`MatrixError::Parse`] on malformed input (bad header, wrong entry
/// count, out-of-range coordinates).
pub fn read_str(text: &str) -> Result<Csr, MatrixError> {
    let mut lines = text.lines().enumerate();

    let (_, header) = lines.next().ok_or_else(|| parse_err(1, "empty input"))?;
    let header = header.to_ascii_lowercase();
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() < 5 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
        return Err(parse_err(1, "expected '%%MatrixMarket matrix ...' header"));
    }
    if fields[2] != "coordinate" {
        return Err(parse_err(1, "only coordinate format is supported"));
    }
    let kind = match fields[3] {
        "real" => ValueKind::Real,
        "integer" => ValueKind::Integer,
        "pattern" => ValueKind::Pattern,
        other => return Err(parse_err(1, &format!("unsupported value type '{other}'"))),
    };
    let symmetry = match fields[4] {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        other => return Err(parse_err(1, &format!("unsupported symmetry '{other}'"))),
    };

    // Skip comments to the size line.
    let (size_line_no, size_line) = lines
        .by_ref()
        .find(|(_, l)| !l.trim_start().starts_with('%') && !l.trim().is_empty())
        .ok_or_else(|| parse_err(1, "missing size line"))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse::<usize>())
        .collect::<Result<_, _>>()
        .map_err(|e| parse_err(size_line_no + 1, &format!("bad size line: {e}")))?;
    if dims.len() != 3 {
        return Err(parse_err(size_line_no + 1, "size line must be 'rows cols nnz'"));
    }
    let (rows, cols, nnz) = (dims[0], dims[1], dims[2]);

    let mut coo = Coo::new(rows, cols);
    coo.reserve(if symmetry == Symmetry::Symmetric { nnz * 2 } else { nnz });
    let mut seen = 0usize;
    for (idx, line) in lines {
        let line = line.trim();
        if line.is_empty() || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let r: usize = parse_tok(&mut it, idx + 1, "row")?;
        let c: usize = parse_tok(&mut it, idx + 1, "col")?;
        let v = match kind {
            ValueKind::Pattern => 1.0,
            _ => {
                let t = it.next().ok_or_else(|| parse_err(idx + 1, "missing value field"))?;
                t.parse::<f64>().map_err(|e| parse_err(idx + 1, &format!("bad value: {e}")))?
            }
        };
        if r == 0 || c == 0 {
            return Err(parse_err(idx + 1, "matrix market coordinates are 1-based"));
        }
        coo.push(r - 1, c - 1, v).map_err(|e| parse_err(idx + 1, &e.to_string()))?;
        if symmetry == Symmetry::Symmetric && r != c {
            coo.push(c - 1, r - 1, v).map_err(|e| parse_err(idx + 1, &e.to_string()))?;
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(parse_err(0, &format!("header declared {nnz} entries but stream held {seen}")));
    }
    Ok(coo.to_csr())
}

/// Reads a Matrix Market matrix from a reader.
///
/// A `&mut R` can be passed for any `R: Read`.
///
/// # Errors
///
/// Returns [`MatrixError::Io`] on read failure or [`MatrixError::Parse`] on
/// malformed content.
pub fn read<R: Read>(mut reader: R) -> Result<Csr, MatrixError> {
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    read_str(&text)
}

/// Reads a Matrix Market file from disk.
///
/// # Errors
///
/// Returns [`MatrixError::Io`] if the file cannot be read, or a parse error.
pub fn read_file<P: AsRef<Path>>(path: P) -> Result<Csr, MatrixError> {
    read_str(&fs::read_to_string(path)?)
}

/// Serializes a CSR matrix as `matrix coordinate real general` text.
pub fn write_string(csr: &Csr) -> String {
    let mut out = String::new();
    out.push_str("%%MatrixMarket matrix coordinate real general\n");
    out.push_str("% written by spacea-matrix\n");
    let _ = writeln!(out, "{} {} {}", csr.rows(), csr.cols(), csr.nnz());
    for i in 0..csr.rows() {
        for (c, v) in csr.row(i) {
            let _ = writeln!(out, "{} {} {}", i + 1, c + 1, v);
        }
    }
    out
}

/// Writes a CSR matrix to a Matrix Market file.
///
/// # Errors
///
/// Returns [`MatrixError::Io`] on write failure.
pub fn write_file<P: AsRef<Path>>(csr: &Csr, path: P) -> Result<(), MatrixError> {
    fs::write(path, write_string(csr))?;
    Ok(())
}

fn parse_err(line: usize, message: &str) -> MatrixError {
    MatrixError::Parse { line, message: message.to_string() }
}

fn parse_tok<'a, I: Iterator<Item = &'a str>>(
    it: &mut I,
    line: usize,
    what: &str,
) -> Result<usize, MatrixError> {
    it.next()
        .ok_or_else(|| parse_err(line, &format!("missing {what} field")))?
        .parse::<usize>()
        .map_err(|e| parse_err(line, &format!("bad {what}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_real_general() {
        let text =
            "%%MatrixMarket matrix coordinate real general\n% comment\n2 3 2\n1 1 1.5\n2 3 2.5\n";
        let csr = read_str(text).unwrap();
        assert_eq!(csr.rows(), 2);
        assert_eq!(csr.cols(), 3);
        assert_eq!(csr.spmv(&[1.0, 0.0, 1.0]), vec![1.5, 2.5]);
    }

    #[test]
    fn reads_pattern() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n2 1\n";
        let csr = read_str(text).unwrap();
        assert_eq!(csr.vals(), &[1.0]);
    }

    #[test]
    fn reads_symmetric_expands() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n2 2 2\n1 1 5\n2 1 7\n";
        let csr = read_str(text).unwrap();
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.spmv(&[0.0, 1.0]), vec![7.0, 0.0]);
    }

    #[test]
    fn symmetric_diagonal_not_duplicated() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n2 2 4\n";
        let csr = read_str(text).unwrap();
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.vals(), &[4.0]);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_str("%%NotMM\n1 1 0\n").is_err());
        assert!(read_str("%%MatrixMarket matrix array real general\n").is_err());
    }

    #[test]
    fn rejects_wrong_count() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1\n";
        assert!(matches!(read_str(text), Err(MatrixError::Parse { .. })));
    }

    #[test]
    fn rejects_zero_based_coords() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1\n";
        assert!(read_str(text).is_err());
    }

    #[test]
    fn roundtrip() {
        let text = "%%MatrixMarket matrix coordinate real general\n3 3 3\n1 2 1\n2 3 2\n3 1 3\n";
        let csr = read_str(text).unwrap();
        assert_eq!(read_str(&write_string(&csr)).unwrap(), csr);
    }

    #[test]
    fn read_from_reader() {
        let bytes = b"%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 9\n";
        let csr = read(&bytes[..]).unwrap();
        assert_eq!(csr.vals(), &[9.0]);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("spacea_mmio_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.mtx");
        let csr =
            read_str("%%MatrixMarket matrix coordinate real general\n1 2 1\n1 2 4\n").unwrap();
        write_file(&csr, &path).unwrap();
        assert_eq!(read_file(&path).unwrap(), csr);
    }
}
