//! Row-distribution statistics matching the columns of the paper's Table I.

use crate::Csr;
use std::fmt;

/// Statistics of the non-zero distribution of a sparse matrix.
///
/// Table I of the paper characterizes each evaluation matrix by its
/// dimensions, `nnz`, the mean number of non-zeros per row (μ) and the
/// standard deviation of the per-row non-zero counts (σ). A small σ indicates
/// a *structural* pattern (FEM-style meshes); a large σ indicates a
/// *non-structural* pattern (power-law graphs).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MatrixStats {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Number of non-zero elements.
    pub nnz: usize,
    /// Mean non-zeros per row (Table I's μ).
    pub mean_row_nnz: f64,
    /// Standard deviation of non-zeros per row (Table I's σ).
    pub stddev_row_nnz: f64,
    /// Largest row length (drives worst-case PE imbalance).
    pub max_row_nnz: usize,
    /// Fraction of entries within a ±1% band of the diagonal (a cheap
    /// locality proxy used by tests on the structural generators).
    pub diag_band_fraction: f64,
}

impl MatrixStats {
    /// Computes the statistics for a CSR matrix.
    pub fn from_csr(csr: &Csr) -> Self {
        let rows = csr.rows();
        let nnz = csr.nnz();
        if rows == 0 {
            return MatrixStats { rows, cols: csr.cols(), nnz, ..Default::default() };
        }
        let mean = nnz as f64 / rows as f64;
        let mut var_acc = 0.0;
        let mut max_row = 0usize;
        for i in 0..rows {
            let n = csr.row_nnz(i);
            max_row = max_row.max(n);
            let d = n as f64 - mean;
            var_acc += d * d;
        }
        let band = (csr.cols() as f64 * 0.01).max(8.0) as i64;
        let mut in_band = 0usize;
        for i in 0..rows {
            for &c in csr.row_cols(i) {
                if ((c as i64) - (i as i64)).abs() <= band {
                    in_band += 1;
                }
            }
        }
        MatrixStats {
            rows,
            cols: csr.cols(),
            nnz,
            mean_row_nnz: mean,
            stddev_row_nnz: (var_acc / rows as f64).sqrt(),
            max_row_nnz: max_row,
            diag_band_fraction: if nnz == 0 { 0.0 } else { in_band as f64 / nnz as f64 },
        }
    }
}

impl fmt::Display for MatrixStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{}, nnz={}, mu={:.2}, sigma={:.2}",
            self.rows, self.cols, self.nnz, self.mean_row_nnz, self.stddev_row_nnz
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    #[test]
    fn stats_of_uniform_rows() {
        let mut coo = Coo::new(4, 4);
        for r in 0..4 {
            for c in 0..2 {
                coo.push(r, c, 1.0).unwrap();
            }
        }
        let s = coo.to_csr().stats();
        assert_eq!(s.nnz, 8);
        assert!((s.mean_row_nnz - 2.0).abs() < 1e-12);
        assert!(s.stddev_row_nnz.abs() < 1e-12);
        assert_eq!(s.max_row_nnz, 2);
    }

    #[test]
    fn stats_of_skewed_rows() {
        let mut coo = Coo::new(2, 8);
        for c in 0..8 {
            coo.push(0, c, 1.0).unwrap();
        }
        let s = coo.to_csr().stats();
        assert!((s.mean_row_nnz - 4.0).abs() < 1e-12);
        assert!((s.stddev_row_nnz - 4.0).abs() < 1e-12);
        assert_eq!(s.max_row_nnz, 8);
    }

    #[test]
    fn stats_of_empty_matrix() {
        let csr = Csr::from_parts(0, 0, vec![0], vec![], vec![]).unwrap();
        let s = csr.stats();
        assert_eq!(s.nnz, 0);
        assert_eq!(s.mean_row_nnz, 0.0);
    }

    #[test]
    fn display_is_nonempty() {
        let csr = Csr::from_parts(1, 1, vec![0, 1], vec![0], vec![1.0]).unwrap();
        assert!(!format!("{}", csr.stats()).is_empty());
    }

    #[test]
    fn diagonal_matrix_is_fully_banded() {
        let mut coo = Coo::new(100, 100);
        for i in 0..100 {
            coo.push(i, i, 1.0).unwrap();
        }
        let s = coo.to_csr().stats();
        assert!((s.diag_band_fraction - 1.0).abs() < 1e-12);
    }
}
