//! The sparse-format subsystem: one trait, four storage layouts.
//!
//! SparseP's evaluation shows the best (format × partitioning) choice for a
//! PIM system is matrix-dependent across its CSR/COO/BCSR taxonomy, and
//! Kreutzer et al.'s SELL-C-σ is the unified SIMD-friendly layout that
//! spans architectures. This module makes those layouts first-class so the
//! harness can sweep them as an axis:
//!
//! * [`CsrFormat`] — wraps the canonical [`Csr`];
//! * [`CooFormat`] — coordinate triplets in row-major order;
//! * [`BcsrFormat`] — blocked CSR (SparseP-style `BCSR`): dense `R×C`
//!   value blocks plus an occupancy bitmask per block, so explicit stored
//!   zeros survive the round trip;
//! * [`SellFormat`] — SELL-C-σ: rows sorted by length inside windows of
//!   σ, packed into slices of C lanes, values column-major per slice.
//!
//! # Contracts
//!
//! Every implementation upholds three invariants the rest of the system
//! builds on (property-tested in `tests/format_props.rs`):
//!
//! 1. **Lossless round trip** — `to_csr()` of a format built from a
//!    canonical CSR (rows with strictly ascending columns, as every
//!    generator and the MatrixMarket reader produce) reproduces that CSR
//!    exactly, including nnz order.
//! 2. **Bitwise reference SpMV** — [`SparseFormat::spmv`] accumulates each
//!    output row in the same order as [`Csr::spmv`] and *skips* padding
//!    slots (never computes `0.0 * x[c]`, which could mint `-0.0` or NaN),
//!    so the result is bit-identical to the CSR reference.
//! 3. **Storage model** — [`SparseFormat::bytes`] reports the on-device
//!    footprint so experiments can compare bytes-per-nnz across formats.
//!
//! [`SparseFormat::stream_rows`] additionally exposes the order in which a
//! streaming engine emits stored slots (output-row id per slot, [`PAD`]
//! for padding). The Serpens-style HBM backend derives its reorder-window
//! stall model from this stream — which is exactly where SELL-C-σ's
//! C-way row interleaving pays off.

use crate::{Coo, Csr};

/// Stream marker for a padding slot: occupies storage and stream
/// bandwidth but accumulates into no output row.
pub const PAD: u32 = u32::MAX;

/// The four storage layouts the scenario matrix sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FormatKind {
    /// Compressed sparse row (the canonical baseline).
    Csr,
    /// Coordinate triplets, row-major.
    Coo,
    /// Blocked CSR with dense value blocks and occupancy masks.
    Bcsr,
    /// Sorted sliced ELLPACK (SELL-C-σ).
    Sell,
}

impl FormatKind {
    /// Every format, in sweep order.
    pub const ALL: [FormatKind; 4] =
        [FormatKind::Csr, FormatKind::Coo, FormatKind::Bcsr, FormatKind::Sell];

    /// Short name used in CLI axes, CSV cells and job labels.
    pub fn label(self) -> &'static str {
        match self {
            FormatKind::Csr => "csr",
            FormatKind::Coo => "coo",
            FormatKind::Bcsr => "bcsr",
            FormatKind::Sell => "sell",
        }
    }

    /// Parses a [`FormatKind::label`] string.
    pub fn parse(s: &str) -> Option<FormatKind> {
        FormatKind::ALL.into_iter().find(|f| f.label() == s)
    }

    /// Builds this format's representation of `a`.
    ///
    /// `a` should be canonical (strictly ascending columns per row) for
    /// the lossless round-trip and bitwise-SpMV guarantees to hold; see
    /// the module docs.
    pub fn build(self, a: &Csr) -> Box<dyn SparseFormat> {
        match self {
            FormatKind::Csr => Box::new(CsrFormat::from_csr(a)),
            FormatKind::Coo => Box::new(CooFormat::from_csr(a)),
            FormatKind::Bcsr => Box::new(BcsrFormat::from_csr(a)),
            FormatKind::Sell => Box::new(SellFormat::from_csr(a)),
        }
    }
}

impl std::fmt::Display for FormatKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A sparse-matrix storage layout with a bitwise reference SpMV and a
/// storage/size model. See the module docs for the contracts.
pub trait SparseFormat {
    /// Which layout this is.
    fn kind(&self) -> FormatKind;
    /// Row count.
    fn rows(&self) -> usize;
    /// Column count.
    fn cols(&self) -> usize;
    /// Logical non-zeros (excluding padding slots).
    fn nnz(&self) -> usize;
    /// Converts back to canonical CSR, losslessly (see module docs).
    fn to_csr(&self) -> Csr;
    /// Reference SpMV, bitwise-equal to [`Csr::spmv`] on the same matrix.
    fn spmv(&self, x: &[f64]) -> Vec<f64>;
    /// Total storage footprint in bytes (indices + values + padding +
    /// per-format side tables).
    fn bytes(&self) -> usize;
    /// Stored slots including padding (each slot holds one value).
    fn stored_slots(&self) -> usize;
    /// Output-row id of each stored slot in the format's streaming order;
    /// [`PAD`] marks padding slots.
    fn stream_rows(&self) -> Vec<u32>;
    /// The coordinate footprint the format *stores* (block padding
    /// included), as a pattern matrix with unit values. The mapping phase
    /// partitions this, so a format that inflates a row's footprint also
    /// inflates its share of PE work.
    fn storage_pattern(&self) -> Csr;

    /// Storage bytes per logical non-zero.
    fn bytes_per_nnz(&self) -> f64 {
        self.bytes() as f64 / self.nnz().max(1) as f64
    }
}

/// Converts between any two formats via the canonical CSR intermediate.
pub fn convert(from: &dyn SparseFormat, to: FormatKind) -> Box<dyn SparseFormat> {
    to.build(&from.to_csr())
}

/// The unit-valued pattern matrix of `a`'s stored coordinates.
fn pattern_of(a: &Csr) -> Csr {
    let ones = vec![1.0; a.nnz()];
    Csr::from_parts(a.rows(), a.cols(), a.row_ptr().to_vec(), a.col_idx().to_vec(), ones)
        // lint:allow(R1) arrays come from a validated Csr, so rebuilding them cannot fail
        .expect("pattern of a valid Csr is a valid Csr")
}

// ---------------------------------------------------------------------------
// CSR
// ---------------------------------------------------------------------------

/// The canonical CSR layout, wrapping [`Csr`] itself.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrFormat {
    inner: Csr,
}

impl CsrFormat {
    /// Wraps (a clone of) the canonical CSR.
    pub fn from_csr(a: &Csr) -> Self {
        CsrFormat { inner: a.clone() }
    }
}

impl SparseFormat for CsrFormat {
    fn kind(&self) -> FormatKind {
        FormatKind::Csr
    }
    fn rows(&self) -> usize {
        self.inner.rows()
    }
    fn cols(&self) -> usize {
        self.inner.cols()
    }
    fn nnz(&self) -> usize {
        self.inner.nnz()
    }
    fn to_csr(&self) -> Csr {
        self.inner.clone()
    }
    fn spmv(&self, x: &[f64]) -> Vec<f64> {
        self.inner.spmv(x)
    }
    fn bytes(&self) -> usize {
        self.inner.csr_bytes()
    }
    fn stored_slots(&self) -> usize {
        self.inner.nnz()
    }
    fn stream_rows(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.inner.nnz());
        for i in 0..self.inner.rows() {
            out.extend(std::iter::repeat_n(i as u32, self.inner.row_nnz(i)));
        }
        out
    }
    fn storage_pattern(&self) -> Csr {
        pattern_of(&self.inner)
    }
}

// ---------------------------------------------------------------------------
// COO
// ---------------------------------------------------------------------------

/// Coordinate triplets in row-major (CSR entry) order.
#[derive(Debug, Clone, PartialEq)]
pub struct CooFormat {
    rows: usize,
    cols: usize,
    row_idx: Vec<u32>,
    col_idx: Vec<u32>,
    vals: Vec<f64>,
}

impl CooFormat {
    /// Flattens a CSR into row-major triplets (entry order preserved).
    pub fn from_csr(a: &Csr) -> Self {
        let mut row_idx = Vec::with_capacity(a.nnz());
        for i in 0..a.rows() {
            row_idx.extend(std::iter::repeat_n(i as u32, a.row_nnz(i)));
        }
        CooFormat {
            rows: a.rows(),
            cols: a.cols(),
            row_idx,
            col_idx: a.col_idx().to_vec(),
            vals: a.vals().to_vec(),
        }
    }
}

impl SparseFormat for CooFormat {
    fn kind(&self) -> FormatKind {
        FormatKind::Coo
    }
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn nnz(&self) -> usize {
        self.vals.len()
    }
    fn to_csr(&self) -> Csr {
        // Entries are row-major already; rebuild row_ptr by counting.
        let mut row_ptr = vec![0usize; self.rows + 1];
        for &r in &self.row_idx {
            row_ptr[r as usize + 1] += 1;
        }
        for i in 0..self.rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        Csr::from_parts(self.rows, self.cols, row_ptr, self.col_idx.clone(), self.vals.clone())
            // lint:allow(R1) arrays were derived from a valid Csr, so the rebuild cannot fail
            .expect("COO derived from a valid Csr converts back")
    }
    fn spmv(&self, x: &[f64]) -> Vec<f64> {
        // Row-major entry order makes the per-row accumulation sequence
        // identical to Csr::spmv (y[i] starts at 0.0 either way).
        let mut y = vec![0.0; self.rows];
        for ((&r, &c), &v) in self.row_idx.iter().zip(&self.col_idx).zip(&self.vals) {
            y[r as usize] += v * x[c as usize];
        }
        y
    }
    fn bytes(&self) -> usize {
        // 4 B row + 4 B col + 8 B value per entry.
        16 * self.vals.len()
    }
    fn stored_slots(&self) -> usize {
        self.vals.len()
    }
    fn stream_rows(&self) -> Vec<u32> {
        self.row_idx.clone()
    }
    fn storage_pattern(&self) -> Csr {
        pattern_of(&self.to_csr())
    }
}

// ---------------------------------------------------------------------------
// BCSR
// ---------------------------------------------------------------------------

/// Default block shape (rows × cols per block).
pub const BCSR_BLOCK: (usize, usize) = (4, 4);

/// Blocked CSR: dense `R×C` value blocks addressed by a block-level CSR,
/// with an occupancy bitmask per block so explicit stored zeros are
/// distinguishable from block padding (that is what makes the round trip
/// lossless even for matrices that store a 0.0).
#[derive(Debug, Clone, PartialEq)]
pub struct BcsrFormat {
    rows: usize,
    cols: usize,
    br: usize,
    bc: usize,
    nnz: usize,
    block_row_ptr: Vec<usize>,
    block_col: Vec<u32>,
    mask: Vec<u64>,
    vals: Vec<f64>,
}

impl BcsrFormat {
    /// Blocks a CSR with the default [`BCSR_BLOCK`] shape.
    pub fn from_csr(a: &Csr) -> Self {
        BcsrFormat::with_block(a, BCSR_BLOCK.0, BCSR_BLOCK.1)
    }

    /// Blocks a CSR with an explicit block shape. Block shapes are capped
    /// at 64 cells so the occupancy mask fits one `u64`; larger requests
    /// fall back to the default shape.
    pub fn with_block(a: &Csr, br: usize, bc: usize) -> Self {
        let (br, bc) = if br == 0 || bc == 0 || br * bc > 64 { BCSR_BLOCK } else { (br, bc) };
        let block_rows = a.rows().div_ceil(br).max(1);
        let mut block_row_ptr = vec![0usize; block_rows + 1];
        let mut block_col = Vec::new();
        let mut mask = Vec::new();
        let mut vals = Vec::new();
        for bi in 0..block_rows {
            let base = bi * br;
            // Gather this block row's entries keyed by block column.
            let mut blocks: std::collections::BTreeMap<u32, (u64, Vec<f64>)> =
                std::collections::BTreeMap::new();
            for r in base..(base + br).min(a.rows()) {
                for (c, v) in a.row(r) {
                    let bj = c / bc as u32;
                    let slot = (r - base) * bc + (c as usize % bc);
                    let entry = blocks.entry(bj).or_insert_with(|| (0u64, vec![0.0; br * bc]));
                    entry.0 |= 1u64 << slot;
                    entry.1[slot] = v;
                }
            }
            for (bj, (m, v)) in blocks {
                block_col.push(bj);
                mask.push(m);
                vals.extend(v);
            }
            block_row_ptr[bi + 1] = block_col.len();
        }
        BcsrFormat {
            rows: a.rows(),
            cols: a.cols(),
            br,
            bc,
            nnz: a.nnz(),
            block_row_ptr,
            block_col,
            mask,
            vals,
        }
    }

    /// The block shape (rows, cols).
    pub fn block(&self) -> (usize, usize) {
        (self.br, self.bc)
    }

    /// Stored blocks.
    pub fn blocks(&self) -> usize {
        self.block_col.len()
    }

    /// Iterates one matrix row's stored entries in ascending-column order.
    fn row_entries(&self, r: usize, mut f: impl FnMut(u32, f64)) {
        let bi = r / self.br;
        let rr = r % self.br;
        for b in self.block_row_ptr[bi]..self.block_row_ptr[bi + 1] {
            let m = self.mask[b];
            for cc in 0..self.bc {
                let slot = rr * self.bc + cc;
                if m & (1u64 << slot) != 0 {
                    let c = self.block_col[b] * self.bc as u32 + cc as u32;
                    f(c, self.vals[b * self.br * self.bc + slot]);
                }
            }
        }
    }
}

impl SparseFormat for BcsrFormat {
    fn kind(&self) -> FormatKind {
        FormatKind::Bcsr
    }
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn nnz(&self) -> usize {
        self.nnz
    }
    fn to_csr(&self) -> Csr {
        let mut row_ptr = vec![0usize; self.rows + 1];
        let mut col_idx = Vec::with_capacity(self.nnz);
        let mut vals = Vec::with_capacity(self.nnz);
        for r in 0..self.rows {
            self.row_entries(r, |c, v| {
                col_idx.push(c);
                vals.push(v);
            });
            row_ptr[r + 1] = col_idx.len();
        }
        Csr::from_parts(self.rows, self.cols, row_ptr, col_idx, vals)
            // lint:allow(R1) the traversal emits in-range ascending columns per row
            .expect("BCSR traversal yields a valid Csr")
    }
    fn spmv(&self, x: &[f64]) -> Vec<f64> {
        // Masked traversal in ascending-column order reproduces the CSR
        // accumulation sequence exactly; padding slots are never touched.
        let mut y = vec![0.0; self.rows];
        for (r, out) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            self.row_entries(r, |c, v| acc += v * x[c as usize]);
            *out = acc;
        }
        y
    }
    fn bytes(&self) -> usize {
        let per_block = 4 + (self.br * self.bc).div_ceil(8) + 8 * self.br * self.bc;
        4 * (self.block_row_ptr.len()) + per_block * self.blocks()
    }
    fn stored_slots(&self) -> usize {
        self.blocks() * self.br * self.bc
    }
    fn stream_rows(&self) -> Vec<u32> {
        // A block engine streams whole blocks, row-major within each.
        let mut out = Vec::with_capacity(self.stored_slots());
        for bi in 0..self.block_row_ptr.len() - 1 {
            let base = bi * self.br;
            for b in self.block_row_ptr[bi]..self.block_row_ptr[bi + 1] {
                let m = self.mask[b];
                for slot in 0..self.br * self.bc {
                    let r = base + slot / self.bc;
                    if m & (1u64 << slot) != 0 && r < self.rows {
                        out.push(r as u32);
                    } else {
                        out.push(PAD);
                    }
                }
            }
        }
        out
    }
    fn storage_pattern(&self) -> Csr {
        // The full footprint of every stored block, padding included:
        // blocking a row widens its stored footprint, and the mapping
        // phase should see that.
        let mut coo = Coo::new(self.rows, self.cols);
        for bi in 0..self.block_row_ptr.len() - 1 {
            let base = bi * self.br;
            for b in self.block_row_ptr[bi]..self.block_row_ptr[bi + 1] {
                for rr in 0..self.br {
                    let r = base + rr;
                    if r >= self.rows {
                        continue;
                    }
                    for cc in 0..self.bc {
                        let c = self.block_col[b] as usize * self.bc + cc;
                        if c < self.cols {
                            let _ = coo.push(r, c, 1.0);
                        }
                    }
                }
            }
        }
        coo.to_csr()
    }
}

// ---------------------------------------------------------------------------
// SELL-C-σ
// ---------------------------------------------------------------------------

/// Default slice height C (lanes per slice).
pub const SELL_CHUNK: usize = 8;
/// Default sorting window σ (rows sorted by length within each window).
pub const SELL_SIGMA: usize = 64;

/// SELL-C-σ (Kreutzer et al.): rows are sorted by descending length
/// inside windows of σ, packed into slices of C lanes, and each slice
/// stores its values column-major padded to the slice's longest row. The
/// row permutation is kept so outputs land back in original order.
#[derive(Debug, Clone, PartialEq)]
pub struct SellFormat {
    rows: usize,
    cols: usize,
    chunk: usize,
    sigma: usize,
    nnz: usize,
    /// `perm[k]` = original row stored at sorted lane position `k`.
    perm: Vec<u32>,
    /// Stored length of the row at lane position `k`.
    row_len: Vec<usize>,
    /// Slot offset of each slice (`len = slices + 1`).
    slice_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    vals: Vec<f64>,
}

impl SellFormat {
    /// Packs a CSR with the default C=[`SELL_CHUNK`], σ=[`SELL_SIGMA`].
    pub fn from_csr(a: &Csr) -> Self {
        SellFormat::with_shape(a, SELL_CHUNK, SELL_SIGMA)
    }

    /// Packs a CSR with explicit C and σ (both clamped to ≥ 1).
    pub fn with_shape(a: &Csr, chunk: usize, sigma: usize) -> Self {
        let chunk = chunk.max(1);
        let sigma = sigma.max(1);
        let rows = a.rows();
        // Sort rows by descending length within σ-windows; the stable sort
        // keeps equal-length rows in original order (deterministic).
        let mut perm: Vec<u32> = (0..rows as u32).collect();
        for window in perm.chunks_mut(sigma) {
            window.sort_by_key(|&r| std::cmp::Reverse(a.row_nnz(r as usize)));
        }
        let row_len: Vec<usize> = perm.iter().map(|&r| a.row_nnz(r as usize)).collect();
        let slices = rows.div_ceil(chunk);
        let mut slice_ptr = vec![0usize; slices + 1];
        for s in 0..slices {
            let lanes = s * chunk..((s + 1) * chunk).min(rows);
            let width = lanes.clone().map(|k| row_len[k]).max().unwrap_or(0);
            slice_ptr[s + 1] = slice_ptr[s] + width * chunk;
        }
        let total = slice_ptr[slices];
        let mut col_idx = vec![0u32; total];
        let mut vals = vec![0.0f64; total];
        for (s, &slice_base) in slice_ptr.iter().enumerate().take(slices) {
            for lane in 0..chunk {
                let k = s * chunk + lane;
                if k >= rows {
                    continue;
                }
                let r = perm[k] as usize;
                for (j, (c, v)) in a.row(r).enumerate() {
                    let slot = slice_base + j * chunk + lane;
                    col_idx[slot] = c;
                    vals[slot] = v;
                }
            }
        }
        SellFormat {
            rows,
            cols: a.cols(),
            chunk,
            sigma,
            nnz: a.nnz(),
            perm,
            row_len,
            slice_ptr,
            col_idx,
            vals,
        }
    }

    /// The slice height C.
    pub fn chunk(&self) -> usize {
        self.chunk
    }

    /// The sorting window σ.
    pub fn sigma(&self) -> usize {
        self.sigma
    }

    /// Number of slices.
    pub fn slices(&self) -> usize {
        self.slice_ptr.len() - 1
    }

    /// Iterates the stored entries of lane position `k` in CSR order.
    fn lane_entries(&self, k: usize, mut f: impl FnMut(u32, f64)) {
        let s = k / self.chunk;
        let lane = k % self.chunk;
        for j in 0..self.row_len[k] {
            let slot = self.slice_ptr[s] + j * self.chunk + lane;
            f(self.col_idx[slot], self.vals[slot]);
        }
    }
}

impl SparseFormat for SellFormat {
    fn kind(&self) -> FormatKind {
        FormatKind::Sell
    }
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn nnz(&self) -> usize {
        self.nnz
    }
    fn to_csr(&self) -> Csr {
        // Scatter lanes back through the permutation, preserving each
        // row's entry order.
        let mut per_row: Vec<(Vec<u32>, Vec<f64>)> = vec![(Vec::new(), Vec::new()); self.rows];
        for k in 0..self.rows {
            let r = self.perm[k] as usize;
            let (cols, vals) = &mut per_row[r];
            self.lane_entries(k, |c, v| {
                cols.push(c);
                vals.push(v);
            });
        }
        let mut row_ptr = vec![0usize; self.rows + 1];
        let mut col_idx = Vec::with_capacity(self.nnz);
        let mut vals = Vec::with_capacity(self.nnz);
        for (i, (c, v)) in per_row.into_iter().enumerate() {
            col_idx.extend(c);
            vals.extend(v);
            row_ptr[i + 1] = col_idx.len();
        }
        Csr::from_parts(self.rows, self.cols, row_ptr, col_idx, vals)
            // lint:allow(R1) lanes were packed from a valid Csr, so the unpack cannot fail
            .expect("SELL unpack yields a valid Csr")
    }
    fn spmv(&self, x: &[f64]) -> Vec<f64> {
        // Each lane accumulates its row in stored (= CSR) order and writes
        // through the permutation; padding slots are never read.
        let mut y = vec![0.0; self.rows];
        for k in 0..self.rows {
            let mut acc = 0.0;
            self.lane_entries(k, |c, v| acc += v * x[c as usize]);
            y[self.perm[k] as usize] = acc;
        }
        y
    }
    fn bytes(&self) -> usize {
        // 12 B per stored slot (padding included) + slice offsets + the
        // permutation and per-lane lengths.
        12 * self.stored_slots() + 4 * self.slice_ptr.len() + 8 * self.rows
    }
    fn stored_slots(&self) -> usize {
        *self.slice_ptr.last().unwrap_or(&0)
    }
    fn stream_rows(&self) -> Vec<u32> {
        // Column-major within each slice: consecutive slots belong to C
        // *different* output rows, which is the interleaving that dodges
        // read-after-write accumulator stalls in a streaming engine.
        let mut out = Vec::with_capacity(self.stored_slots());
        for s in 0..self.slices() {
            let width = (self.slice_ptr[s + 1] - self.slice_ptr[s]) / self.chunk;
            for j in 0..width {
                for lane in 0..self.chunk {
                    let k = s * self.chunk + lane;
                    if k < self.rows && j < self.row_len[k] {
                        out.push(self.perm[k]);
                    } else {
                        out.push(PAD);
                    }
                }
            }
        }
        out
    }
    fn storage_pattern(&self) -> Csr {
        // Padding slots read no input element, so the access footprint is
        // the matrix's own pattern.
        pattern_of(&self.to_csr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{banded, rmat, BandedConfig, RmatConfig};
    use crate::suite;

    fn sample() -> Csr {
        banded(&BandedConfig { n: 97, mean_row_nnz: 7.0, seed: 3, ..Default::default() })
    }

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn kind_labels_round_trip() {
        for k in FormatKind::ALL {
            assert_eq!(FormatKind::parse(k.label()), Some(k), "{k}");
        }
        assert_eq!(FormatKind::parse("ellpack"), None);
    }

    #[test]
    fn every_format_round_trips_the_sample() {
        let a = sample();
        for k in FormatKind::ALL {
            let f = k.build(&a);
            assert_eq!(f.kind(), k);
            assert_eq!((f.rows(), f.cols(), f.nnz()), (a.rows(), a.cols(), a.nnz()), "{k}");
            assert_eq!(f.to_csr(), a, "{k} must round-trip losslessly");
        }
    }

    #[test]
    fn every_format_spmv_is_bitwise_csr() {
        let a = sample();
        let x: Vec<f64> = (0..a.cols()).map(|i| 1.0 + (i % 7) as f64 * 0.25).collect();
        let want = bits(&a.spmv(&x));
        for k in FormatKind::ALL {
            assert_eq!(bits(&k.build(&a).spmv(&x)), want, "{k}");
        }
    }

    #[test]
    fn conversions_between_all_pairs_are_lossless() {
        let a = rmat(&RmatConfig { n: 120, edges: 700, seed: 9, ..Default::default() });
        for from in FormatKind::ALL {
            let f = from.build(&a);
            for to in FormatKind::ALL {
                assert_eq!(convert(f.as_ref(), to).to_csr(), a, "{from} -> {to}");
            }
        }
    }

    #[test]
    fn bcsr_mask_preserves_explicit_zeros() {
        // A stored 0.0 must survive the round trip (it is not padding).
        let mut coo = Coo::new(6, 6);
        coo.push(0, 0, 0.0).unwrap();
        coo.push(0, 1, 2.0).unwrap();
        coo.push(5, 5, -0.0).unwrap();
        let a = coo.to_csr();
        let b = BcsrFormat::from_csr(&a);
        assert_eq!(b.to_csr(), a);
        assert_eq!(b.to_csr().vals()[0].to_bits(), 0.0f64.to_bits());
        assert_eq!(b.to_csr().vals()[2].to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn sell_sorts_within_sigma_windows_only() {
        let e = suite::entry_by_id(13).unwrap(); // power-law: wide length spread
        let a = e.generate(512);
        let s = SellFormat::with_shape(&a, 4, 16);
        // Within each window, lengths are non-increasing.
        for w in 0..a.rows().div_ceil(16) {
            let lo = w * 16;
            let hi = ((w + 1) * 16).min(a.rows());
            for k in lo..hi - 1 {
                assert!(s.row_len[k] >= s.row_len[k + 1], "window {w} not sorted at {k}");
            }
            // And every lane in the window is a row from the same window.
            for k in lo..hi {
                let r = s.perm[k] as usize;
                assert!((lo..hi).contains(&r), "perm leaked across the sigma window");
            }
        }
        assert_eq!(s.to_csr(), a);
    }

    #[test]
    fn sell_stream_interleaves_rows() {
        let a = sample();
        let s = SellFormat::from_csr(&a);
        let stream = s.stream_rows();
        assert_eq!(stream.len(), s.stored_slots());
        // Consecutive non-padding slots inside a slice never repeat a row
        // within a C-window: same-row slots are exactly `chunk` apart.
        for (i, &r) in stream.iter().enumerate() {
            if r == PAD {
                continue;
            }
            for d in 1..s.chunk().min(stream.len() - i) {
                assert_ne!(stream[i + d], r, "row {r} repeats within a C-window at slot {i}");
            }
        }
    }

    #[test]
    fn storage_models_are_ordered_sanely() {
        let a = sample();
        let csr = FormatKind::Csr.build(&a);
        let coo = FormatKind::Coo.build(&a);
        assert!(coo.bytes() > csr.bytes(), "COO stores a row index per entry");
        for k in FormatKind::ALL {
            let f = k.build(&a);
            assert!(f.bytes() > 0);
            assert!(f.bytes_per_nnz() >= 8.0, "{k}: a value alone is 8 B");
            assert!(f.stored_slots() >= f.nnz(), "{k}");
            assert_eq!(f.stream_rows().len(), f.stored_slots(), "{k}");
        }
    }

    #[test]
    fn storage_pattern_covers_the_matrix_pattern() {
        let a = sample();
        for k in FormatKind::ALL {
            let p = k.build(&a).storage_pattern();
            assert_eq!((p.rows(), p.cols()), (a.rows(), a.cols()), "{k}");
            assert!(p.nnz() >= a.nnz(), "{k} pattern must cover every stored entry");
            // BCSR inflates the footprint with block padding; the others
            // match the matrix pattern exactly.
            if k != FormatKind::Bcsr {
                assert_eq!(p.nnz(), a.nnz(), "{k}");
            }
        }
        let b = FormatKind::Bcsr.build(&a).storage_pattern();
        assert!(b.nnz() > a.nnz(), "block padding must widen the BCSR footprint");
    }

    #[test]
    fn empty_and_single_row_matrices_work() {
        let empty = Coo::new(3, 5).to_csr();
        let single = {
            let mut c = Coo::new(1, 4);
            c.push(0, 2, 1.5).unwrap();
            c.to_csr()
        };
        for a in [empty, single] {
            let x = vec![1.0; a.cols()];
            let want = bits(&a.spmv(&x));
            for k in FormatKind::ALL {
                let f = k.build(&a);
                assert_eq!(f.to_csr(), a, "{k}");
                assert_eq!(bits(&f.spmv(&x)), want, "{k}");
            }
        }
    }
}
