use std::error::Error;
use std::fmt;

/// Errors produced while constructing or parsing sparse matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MatrixError {
    /// A row or column coordinate exceeds the matrix dimensions.
    CoordinateOutOfBounds {
        /// Row index of the offending entry.
        row: usize,
        /// Column index of the offending entry.
        col: usize,
        /// Matrix row count.
        rows: usize,
        /// Matrix column count.
        cols: usize,
    },
    /// A vector length does not match the matrix dimension it multiplies.
    DimensionMismatch {
        /// Length that was expected (the matrix dimension).
        expected: usize,
        /// Length that was provided.
        actual: usize,
    },
    /// The CSR arrays are inconsistent (wrong lengths or non-monotone
    /// `row_ptr`).
    MalformedCsr(String),
    /// A Matrix Market stream could not be parsed.
    Parse {
        /// 1-based line number where parsing failed.
        line: usize,
        /// Description of the failure.
        message: String,
    },
    /// An I/O error while reading or writing a Matrix Market stream.
    Io(String),
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::CoordinateOutOfBounds { row, col, rows, cols } => {
                write!(f, "coordinate ({row}, {col}) is outside a {rows}x{cols} matrix")
            }
            MatrixError::DimensionMismatch { expected, actual } => {
                write!(f, "vector length {actual} does not match dimension {expected}")
            }
            MatrixError::MalformedCsr(msg) => write!(f, "malformed CSR arrays: {msg}"),
            MatrixError::Parse { line, message } => {
                write!(f, "matrix market parse error at line {line}: {message}")
            }
            MatrixError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl Error for MatrixError {}

impl From<std::io::Error> for MatrixError {
    fn from(err: std::io::Error) -> Self {
        MatrixError::Io(err.to_string())
    }
}
