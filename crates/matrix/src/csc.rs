use crate::{Coo, Csr, MatrixError};

/// A sparse matrix in Compressed Sparse Column (CSC) format.
///
/// The column-major dual of [`Csr`]: `col_ptr` (length `cols + 1`) indexes
/// into `row_idx`/`vals`. CSC is the natural format for column-wise access
/// patterns — gathering over in-edges, computing `Aᵀx` without an explicit
/// transpose, and the column-centric SpMV variants several of the paper's
/// related-work formats build on.
///
/// # Example
///
/// ```
/// use spacea_matrix::{Csc, Csr};
///
/// # fn main() -> Result<(), spacea_matrix::MatrixError> {
/// // [ 1 0 ]
/// // [ 2 3 ]
/// let csr = Csr::from_parts(2, 2, vec![0, 1, 3], vec![0, 0, 1], vec![1.0, 2.0, 3.0])?;
/// let csc = Csc::from_csr(&csr);
/// assert_eq!(csc.spmv(&[1.0, 1.0]), vec![1.0, 5.0]);
/// assert_eq!(csc.to_csr(), csr);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Csc {
    rows: usize,
    cols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<u32>,
    vals: Vec<f64>,
}

impl Csc {
    /// Builds a CSC matrix from raw arrays, validating consistency.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::MalformedCsr`] (shared with the CSR
    /// validator) when the arrays are inconsistent.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        col_ptr: Vec<usize>,
        row_idx: Vec<u32>,
        vals: Vec<f64>,
    ) -> Result<Self, MatrixError> {
        if col_ptr.len() != cols + 1 {
            return Err(MatrixError::MalformedCsr(format!(
                "col_ptr has length {} but expected {}",
                col_ptr.len(),
                cols + 1
            )));
        }
        if row_idx.len() != vals.len() {
            return Err(MatrixError::MalformedCsr(format!(
                "row_idx length {} != vals length {}",
                row_idx.len(),
                vals.len()
            )));
        }
        if col_ptr.first() != Some(&0) || col_ptr.last() != Some(&row_idx.len()) {
            return Err(MatrixError::MalformedCsr(
                "col_ptr must start at 0 and end at nnz".to_string(),
            ));
        }
        if col_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(MatrixError::MalformedCsr("col_ptr must be non-decreasing".to_string()));
        }
        if let Some(&bad) = row_idx.iter().find(|&&r| r as usize >= rows) {
            return Err(MatrixError::MalformedCsr(format!(
                "row index {bad} out of range for {rows} rows"
            )));
        }
        Ok(Csc { rows, cols, col_ptr, row_idx, vals })
    }

    /// Converts from CSR (no value reordering beyond the format change).
    pub fn from_csr(csr: &Csr) -> Self {
        let t = csr.transpose();
        // The transpose's rows are this matrix's columns, already sorted.
        Csc {
            rows: csr.rows(),
            cols: csr.cols(),
            col_ptr: t.row_ptr().to_vec(),
            row_idx: t.col_idx().to_vec(),
            vals: t.vals().to_vec(),
        }
    }

    /// Converts back to CSR.
    pub fn to_csr(&self) -> Csr {
        let mut coo = Coo::new(self.rows, self.cols);
        coo.reserve(self.nnz());
        for j in 0..self.cols {
            for k in self.col_ptr[j]..self.col_ptr[j + 1] {
                coo.push(self.row_idx[k] as usize, j, self.vals[k])
                    // lint:allow(R1) CSC invariants keep entries in bounds
                    .expect("CSC entries are in bounds");
            }
        }
        coo.to_csr()
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Returns `true` if no non-zeros are stored.
    pub fn is_empty(&self) -> bool {
        self.row_idx.is_empty()
    }

    /// The `(row, value)` pairs of column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn col(&self, j: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        let range = self.col_ptr[j]..self.col_ptr[j + 1];
        self.row_idx[range.clone()].iter().copied().zip(self.vals[range].iter().copied())
    }

    /// Column-major SpMV: `y = A x` by scattering each column's
    /// contributions.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    #[allow(clippy::needless_range_loop)] // indexed kernels read clearer
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "input vector length must equal matrix columns");
        let mut y = vec![0.0; self.rows];
        for j in 0..self.cols {
            let xj = x[j];
            if xj == 0.0 {
                continue;
            }
            for (i, v) in self.col(j) {
                y[i as usize] += v * xj;
            }
        }
        y
    }

    /// `y = Aᵀ x` without materializing the transpose: a CSC matrix *is*
    /// the CSR of its transpose, so this is a row-major dot-product walk.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    #[allow(clippy::needless_range_loop)]
    pub fn spmv_transpose(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "input vector length must equal matrix rows");
        let mut y = vec![0.0; self.cols];
        for j in 0..self.cols {
            let mut acc = 0.0;
            for (i, v) in self.col(j) {
                acc += v * x[i as usize];
            }
            y[j] = acc;
        }
        y
    }
}

impl From<&Csr> for Csc {
    fn from(csr: &Csr) -> Self {
        Csc::from_csr(csr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{uniform_random, UniformConfig};

    fn sample() -> Csr {
        uniform_random(&UniformConfig { rows: 40, cols: 30, row_nnz: 5, seed: 3 })
    }

    #[test]
    fn csc_spmv_matches_csr() {
        let csr = sample();
        let csc = Csc::from_csr(&csr);
        let x: Vec<f64> = (0..30).map(|i| (i as f64 * 0.3).sin()).collect();
        let (a, b) = (csr.spmv(&x), csc.spmv(&x));
        for (p, q) in a.iter().zip(&b) {
            assert!((p - q).abs() < 1e-12);
        }
    }

    #[test]
    fn transpose_spmv_matches_explicit_transpose() {
        let csr = sample();
        let csc = Csc::from_csr(&csr);
        let x: Vec<f64> = (0..40).map(|i| (i as f64 * 0.7).cos()).collect();
        let (a, b) = (csr.transpose().spmv(&x), csc.spmv_transpose(&x));
        for (p, q) in a.iter().zip(&b) {
            assert!((p - q).abs() < 1e-12);
        }
    }

    #[test]
    fn roundtrip_csr() {
        let csr = sample();
        assert_eq!(Csc::from_csr(&csr).to_csr(), csr);
    }

    #[test]
    fn from_parts_validates() {
        assert!(Csc::from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err()); // bad ptr len
        assert!(Csc::from_parts(2, 1, vec![0, 2], vec![0, 5], vec![1.0, 1.0]).is_err()); // row range
        assert!(Csc::from_parts(2, 1, vec![0, 1], vec![0], vec![]).is_err()); // len mismatch
        assert!(Csc::from_parts(2, 1, vec![0, 1], vec![0], vec![1.0]).is_ok());
    }

    #[test]
    fn skips_zero_x_entries() {
        let csr = sample();
        let csc = Csc::from_csr(&csr);
        let x = vec![0.0; 30];
        assert_eq!(csc.spmv(&x), vec![0.0; 40]);
    }

    #[test]
    fn from_ref_trait() {
        let csr = sample();
        let csc: Csc = (&csr).into();
        assert_eq!(csc.nnz(), csr.nnz());
        assert!(!csc.is_empty());
        assert_eq!(csc.rows(), 40);
        assert_eq!(csc.cols(), 30);
    }
}
