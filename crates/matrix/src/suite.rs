//! The paper's Table I evaluation suite.
//!
//! Fifteen matrices from the University of Florida (SuiteSparse) collection,
//! reproduced here as deterministic synthetic stand-ins that match each
//! matrix's published dimensions, `nnz`, mean row length μ, and row-length
//! standard deviation σ, scaled down by a configurable factor so cycle-level
//! simulation is feasible (see DESIGN.md §4 for the substitution rationale).
//!
//! # Example
//!
//! ```
//! use spacea_matrix::suite;
//!
//! let entry = suite::entry_by_name("bcsstk32").expect("known matrix");
//! let csr = entry.generate(suite::DEFAULT_SCALE);
//! assert!(csr.nnz() > 0);
//! ```

use crate::gen::{banded, rmat, BandedConfig, RmatConfig};
use crate::Csr;
use std::fmt;

/// Default down-scale factor applied to rows and nnz of each Table I matrix.
///
/// The default machine is 1/8 of the paper's (448 of 3584 Product-PEs), so a
/// 1/8 matrix scale reproduces the paper's work-per-PE regime exactly:
/// `nnz / (8 * 448) = nnz / 3584` non-zeros per PE, the quantity that
/// determines CAM reuse windows and MLP behaviour.
pub const DEFAULT_SCALE: usize = 8;

/// Application domain of a Table I matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Domain {
    /// FEM structural problems (bcsstk32, crankseg_2, ct20stif, pwtk, shipsec1).
    Structural,
    /// 2D/3D problems (cant, consph).
    Problem2D3D,
    /// Chemical process simulation (lhr71).
    ChemicalProcess,
    /// Semiconductor device simulation (ohne2).
    Semiconductor,
    /// Weighted undirected graph (pdb1HYS).
    UndirectedGraph,
    /// Computational fluid dynamics (rma10).
    Cfd,
    /// Directed (weighted) graphs — social networks and the web
    /// (soc-sign-epinions, Stanford, webbase-1M).
    DirectedGraph,
    /// Materials problems (xenon2).
    Materials,
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Domain::Structural => "Structural Problem",
            Domain::Problem2D3D => "2D/3D Problem",
            Domain::ChemicalProcess => "Chemical Process Simulation",
            Domain::Semiconductor => "Semiconductor Device Problem",
            Domain::UndirectedGraph => "Weighted Undirected Graph",
            Domain::Cfd => "Computational Fluid Dynamics",
            Domain::DirectedGraph => "Directed Graph",
            Domain::Materials => "Materials Problem",
        };
        f.write_str(s)
    }
}

/// The statistics published in Table I for the original (unscaled) matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PublishedStats {
    /// Rows (= columns; all Table I matrices are square).
    pub n: usize,
    /// Non-zero count.
    pub nnz: usize,
    /// Mean non-zeros per row (μ).
    pub mean: f64,
    /// Standard deviation of non-zeros per row (σ).
    pub stddev: f64,
}

/// How a suite entry is synthesized.
#[derive(Debug, Clone, Copy, PartialEq)]
enum GenKind {
    /// Banded FEM-style with the given band factor and block size.
    Banded { band_factor: f64, block_rows: usize, run_len: usize },
    /// R-MAT power-law graph.
    Rmat { a: f64, b: f64, c: f64 },
}

/// One Table I matrix: identity, published statistics, and its synthetic
/// generator.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteEntry {
    /// Table I matrix id (1–15).
    pub id: u8,
    /// SuiteSparse matrix name.
    pub name: &'static str,
    /// Application domain as listed in Table I.
    pub domain: Domain,
    /// Published (unscaled) statistics.
    pub published: PublishedStats,
    kind: GenKind,
}

impl SuiteEntry {
    /// Generates the scaled synthetic stand-in.
    ///
    /// Rows and `nnz` are divided by `scale` (minimum 1 row); μ and the σ/μ
    /// shape are preserved. `scale = 1` reproduces the published size.
    ///
    /// # Panics
    ///
    /// Panics if `scale == 0`.
    pub fn generate(&self, scale: usize) -> Csr {
        assert!(scale > 0, "scale must be positive");
        let n = (self.published.n / scale).max(64);
        let seed = 0x5ACE_A100 + self.id as u64;
        match self.kind {
            GenKind::Banded { band_factor, block_rows, run_len } => banded(&BandedConfig {
                n,
                mean_row_nnz: self.published.mean,
                stddev_row_nnz: self.published.stddev,
                band_factor,
                block_rows,
                run_len,
                seed,
            }),
            GenKind::Rmat { a, b, c } => {
                // Self-loops contribute n entries; draw the rest as edges.
                let target_nnz = ((self.published.nnz / scale).max(n + 1)) as f64;
                let edges = (target_nnz * 1.08) as usize - n; // ~8% duplicate loss
                rmat(&RmatConfig { n, edges: edges.max(1), a, b, c, seed })
            }
        }
    }

    /// Whether the matrix is a power-law graph (Table I ids 12–14), the class
    /// the paper singles out for poor bandwidth utilization in Figure 2.
    pub fn is_power_law(&self) -> bool {
        matches!(self.kind, GenKind::Rmat { .. })
    }
}

/// All fifteen Table I entries, in paper order (ids 1–15).
pub fn entries() -> &'static [SuiteEntry] {
    use Domain::*;
    use GenKind::*;
    static ENTRIES: std::sync::OnceLock<Vec<SuiteEntry>> = std::sync::OnceLock::new();
    ENTRIES.get_or_init(|| {
        let fem = |band: f64| Banded { band_factor: band, block_rows: 8, run_len: 6 };
        vec![
            SuiteEntry {
                id: 1,
                name: "bcsstk32",
                domain: Structural,
                published: PublishedStats { n: 44_609, nnz: 2_014_701, mean: 45.16, stddev: 15.48 },
                kind: fem(6.0),
            },
            SuiteEntry {
                id: 2,
                name: "cant",
                domain: Problem2D3D,
                published: PublishedStats { n: 62_451, nnz: 4_007_383, mean: 64.17, stddev: 14.06 },
                kind: fem(5.0),
            },
            SuiteEntry {
                id: 3,
                name: "consph",
                domain: Problem2D3D,
                published: PublishedStats { n: 83_334, nnz: 6_010_480, mean: 72.13, stddev: 19.08 },
                kind: fem(5.0),
            },
            SuiteEntry {
                id: 4,
                name: "crankseg_2",
                domain: Structural,
                published: PublishedStats {
                    n: 63_838,
                    nnz: 14_148_858,
                    mean: 221.64,
                    stddev: 95.88,
                },
                kind: fem(4.0),
            },
            SuiteEntry {
                id: 5,
                name: "ct20stif",
                domain: Structural,
                published: PublishedStats { n: 52_329, nnz: 2_600_295, mean: 51.57, stddev: 16.98 },
                kind: fem(6.0),
            },
            SuiteEntry {
                id: 6,
                name: "lhr71",
                domain: ChemicalProcess,
                published: PublishedStats { n: 70_304, nnz: 1_494_006, mean: 21.74, stddev: 26.32 },
                // Irregular chemistry band: wide scatter, small runs.
                kind: Banded { band_factor: 24.0, block_rows: 2, run_len: 2 },
            },
            SuiteEntry {
                id: 7,
                name: "ohne2",
                domain: Semiconductor,
                published: PublishedStats {
                    n: 181_343,
                    nnz: 6_869_939,
                    mean: 61.01,
                    stddev: 21.09,
                },
                kind: fem(8.0),
            },
            SuiteEntry {
                id: 8,
                name: "pdb1HYS",
                domain: UndirectedGraph,
                published: PublishedStats {
                    n: 36_417,
                    nnz: 4_344_765,
                    mean: 119.31,
                    stddev: 31.86,
                },
                kind: fem(4.0),
            },
            SuiteEntry {
                id: 9,
                name: "pwtk",
                domain: Structural,
                published: PublishedStats {
                    n: 217_918,
                    nnz: 11_524_432,
                    mean: 53.39,
                    stddev: 4.74,
                },
                kind: fem(5.0),
            },
            SuiteEntry {
                id: 10,
                name: "rma10",
                domain: Cfd,
                published: PublishedStats { n: 46_835, nnz: 2_329_092, mean: 50.69, stddev: 27.78 },
                kind: Banded { band_factor: 10.0, block_rows: 4, run_len: 4 },
            },
            SuiteEntry {
                id: 11,
                name: "shipsec1",
                domain: Structural,
                published: PublishedStats {
                    n: 140_874,
                    nnz: 3_568_176,
                    mean: 55.46,
                    stddev: 11.07,
                },
                kind: fem(6.0),
            },
            SuiteEntry {
                id: 12,
                name: "soc-sign-epinions",
                domain: DirectedGraph,
                published: PublishedStats { n: 131_828, nnz: 841_372, mean: 6.38, stddev: 32.95 },
                kind: Rmat { a: 0.57, b: 0.19, c: 0.19 },
            },
            SuiteEntry {
                id: 13,
                name: "Stanford",
                domain: DirectedGraph,
                published: PublishedStats {
                    n: 281_903,
                    nnz: 2_312_497,
                    mean: 8.20,
                    stddev: 166.33,
                },
                // More extreme skew for the web-graph hub structure.
                kind: Rmat { a: 0.65, b: 0.15, c: 0.15 },
            },
            SuiteEntry {
                id: 14,
                name: "webbase-1M",
                domain: DirectedGraph,
                published: PublishedStats {
                    n: 1_000_005,
                    nnz: 3_105_536,
                    mean: 3.11,
                    stddev: 25.35,
                },
                kind: Rmat { a: 0.60, b: 0.18, c: 0.18 },
            },
            SuiteEntry {
                id: 15,
                name: "xenon2",
                domain: Materials,
                published: PublishedStats { n: 157_464, nnz: 3_866_688, mean: 24.56, stddev: 4.07 },
                kind: fem(5.0),
            },
        ]
    })
}

/// Looks up a suite entry by its SuiteSparse name (case-sensitive).
pub fn entry_by_name(name: &str) -> Option<&'static SuiteEntry> {
    entries().iter().find(|e| e.name == name)
}

/// Looks up a suite entry by its Table I id (1–15).
pub fn entry_by_id(id: u8) -> Option<&'static SuiteEntry> {
    entries().iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_entries_in_order() {
        let es = entries();
        assert_eq!(es.len(), 15);
        for (i, e) in es.iter().enumerate() {
            assert_eq!(e.id as usize, i + 1);
        }
    }

    #[test]
    fn lookup_by_name_and_id() {
        assert_eq!(entry_by_name("pwtk").unwrap().id, 9);
        assert_eq!(entry_by_id(13).unwrap().name, "Stanford");
        assert!(entry_by_name("nope").is_none());
        assert!(entry_by_id(0).is_none());
    }

    #[test]
    fn power_law_flags_match_paper() {
        // The paper calls out matrices 12, 13, 14 as the poorly-utilizing
        // social/web graphs.
        for e in entries() {
            assert_eq!(e.is_power_law(), matches!(e.id, 12..=14), "{}", e.name);
        }
    }

    #[test]
    fn generated_mean_tracks_published() {
        // Spot-check three structural matrices at a coarse scale.
        for name in ["bcsstk32", "cant", "xenon2"] {
            let e = entry_by_name(name).unwrap();
            let s = e.generate(256).stats();
            let rel = (s.mean_row_nnz - e.published.mean).abs() / e.published.mean;
            assert!(
                rel < 0.35,
                "{name}: generated mu {} vs published {}",
                s.mean_row_nnz,
                e.published.mean
            );
        }
    }

    #[test]
    fn generated_power_law_is_skewed() {
        for id in [12u8, 13, 14] {
            let e = entry_by_id(id).unwrap();
            let s = e.generate(256).stats();
            assert!(
                s.stddev_row_nnz > s.mean_row_nnz,
                "{}: sigma {} should exceed mu {}",
                e.name,
                s.stddev_row_nnz,
                s.mean_row_nnz
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let e = entry_by_id(1).unwrap();
        assert_eq!(e.generate(256), e.generate(256));
    }

    #[test]
    fn scale_one_reproduces_published_rows() {
        // Only check the smallest matrix at full scale to keep tests quick.
        let e = entry_by_name("pdb1HYS").unwrap();
        let csr = e.generate(1);
        assert_eq!(csr.rows(), e.published.n);
    }
}
