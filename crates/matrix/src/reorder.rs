//! Matrix reordering: reverse Cuthill–McKee (RCM) bandwidth reduction.
//!
//! The SuiteSparse FEM matrices the paper evaluates are stored in
//! bandwidth-reduced orderings, which is why row order carries locality.
//! RCM lets this repo study ordering sensitivity: shuffle a matrix to
//! destroy ordering locality, then recover it — the `ordering` ablation
//! shows how much of the mapping pipeline's benefit is ordering-dependent.

use crate::{Coo, Csr};
use std::collections::VecDeque;

/// A row/column permutation: `perm[new_index] = old_index`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    perm: Vec<u32>,
}

impl Permutation {
    /// Builds a permutation from a `new → old` table.
    ///
    /// # Panics
    ///
    /// Panics if the table is not a permutation of `0..len`.
    pub fn new(perm: Vec<u32>) -> Self {
        let mut seen = vec![false; perm.len()];
        for &p in &perm {
            assert!((p as usize) < perm.len() && !seen[p as usize], "table must be a permutation");
            seen[p as usize] = true;
        }
        Permutation { perm }
    }

    /// The identity permutation.
    pub fn identity(n: usize) -> Self {
        Permutation { perm: (0..n as u32).collect() }
    }

    /// Length of the permutation.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// Returns `true` for an empty permutation.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// The old index at new position `new`.
    pub fn old_of(&self, new: usize) -> usize {
        self.perm[new] as usize
    }

    /// The inverse map: `inv[old_index] = new_index`.
    pub fn inverse_table(&self) -> Vec<u32> {
        let mut inv = vec![0u32; self.perm.len()];
        for (new, &old) in self.perm.iter().enumerate() {
            inv[old as usize] = new as u32;
        }
        inv
    }

    /// Applies the permutation symmetrically: `B[i][j] = A[perm(i)][perm(j)]`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or sizes mismatch.
    pub fn apply_symmetric(&self, a: &Csr) -> Csr {
        assert_eq!(a.rows(), a.cols(), "symmetric permutation needs a square matrix");
        assert_eq!(a.rows(), self.len(), "permutation length must match the matrix");
        let inv = self.inverse_table();
        let mut coo = Coo::new(a.rows(), a.cols());
        coo.reserve(a.nnz());
        for i in 0..a.rows() {
            let ni = inv[i] as usize;
            for (j, v) in a.row(i) {
                // lint:allow(R1) permutation length is validated above
                coo.push(ni, inv[j as usize] as usize, v).expect("permuted index in bounds");
            }
        }
        coo.to_csr()
    }

    /// Permutes a vector: `out[i] = x[perm(i)]`.
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch.
    pub fn apply_to_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.len(), "vector length must match");
        self.perm.iter().map(|&old| x[old as usize]).collect()
    }
}

/// The half-bandwidth of a matrix: `max |i - j|` over non-zeros.
pub fn bandwidth(a: &Csr) -> usize {
    let mut bw = 0usize;
    for i in 0..a.rows() {
        for &c in a.row_cols(i) {
            bw = bw.max((c as i64 - i as i64).unsigned_abs() as usize);
        }
    }
    bw
}

/// Computes the reverse Cuthill–McKee ordering of the symmetrized structure
/// of `a`.
///
/// Classic BFS-based bandwidth reduction: start from a minimum-degree vertex
/// of each connected component, visit neighbours in increasing-degree order,
/// and reverse the final order.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn rcm(a: &Csr) -> Permutation {
    assert_eq!(a.rows(), a.cols(), "RCM needs a square matrix");
    let n = a.rows();
    // Symmetrized adjacency (unweighted, deduped, sorted by degree later).
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for i in 0..n {
        for &j in a.row_cols(i) {
            let j = j as usize;
            if i != j {
                adj[i].push(j as u32);
                adj[j].push(i as u32);
            }
        }
    }
    for l in &mut adj {
        l.sort_unstable();
        l.dedup();
    }
    let degree = |v: usize| adj[v].len();

    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut queue = VecDeque::new();
    // Deterministic component starts: lowest-degree unvisited vertex
    // (scanning ids ascending breaks ties).
    loop {
        let start = (0..n).filter(|&v| !visited[v]).min_by_key(|&v| (degree(v), v));
        let Some(start) = start else { break };
        visited[start] = true;
        queue.push_back(start as u32);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let mut neighbours: Vec<u32> =
                adj[v as usize].iter().copied().filter(|&u| !visited[u as usize]).collect();
            neighbours.sort_by_key(|&u| (degree(u as usize), u));
            for u in neighbours {
                visited[u as usize] = true;
                queue.push_back(u);
            }
        }
    }
    order.reverse();
    Permutation::new(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    #[test]
    fn permutation_roundtrip_on_vectors() {
        let p = Permutation::new(vec![2, 0, 1]);
        let x = vec![10.0, 20.0, 30.0];
        assert_eq!(p.apply_to_vec(&x), vec![30.0, 10.0, 20.0]);
        let inv = p.inverse_table();
        assert_eq!(inv, vec![1, 2, 0]);
    }

    #[test]
    #[should_panic(expected = "must be a permutation")]
    fn rejects_non_permutation() {
        Permutation::new(vec![0, 0, 1]);
    }

    #[test]
    fn symmetric_apply_preserves_spmv_up_to_permutation() {
        let m = crate::gen::banded(&crate::gen::BandedConfig { n: 64, ..Default::default() });
        let p = Permutation::new({
            let mut v: Vec<u32> = (0..64).collect();
            let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
            v.shuffle(&mut rng);
            v
        });
        let b = p.apply_symmetric(&m);
        let x: Vec<f64> = (0..64).map(|i| i as f64 * 0.1).collect();
        // B (P x) == P (A x): permuting the system permutes the answer.
        let px = p.apply_to_vec(&x);
        let lhs = b.spmv(&px);
        let rhs = p.apply_to_vec(&m.spmv(&x));
        for (l, r) in lhs.iter().zip(&rhs) {
            assert!((l - r).abs() < 1e-12);
        }
    }

    #[test]
    fn rcm_recovers_banded_structure() {
        // Shuffle a banded matrix, then RCM it: bandwidth should recover to
        // near the original.
        let m = crate::gen::banded(&crate::gen::BandedConfig {
            n: 256,
            mean_row_nnz: 8.0,
            band_factor: 3.0,
            ..Default::default()
        });
        let original_bw = bandwidth(&m);
        let shuffle = Permutation::new({
            let mut v: Vec<u32> = (0..256).collect();
            let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
            v.shuffle(&mut rng);
            v
        });
        let shuffled = shuffle.apply_symmetric(&m);
        assert!(bandwidth(&shuffled) > 2 * original_bw, "shuffle must destroy banding");
        let recovered = rcm(&shuffled).apply_symmetric(&shuffled);
        assert!(
            bandwidth(&recovered) < bandwidth(&shuffled) / 2,
            "RCM must substantially reduce bandwidth: {} -> {}",
            bandwidth(&shuffled),
            bandwidth(&recovered)
        );
    }

    #[test]
    fn rcm_is_a_permutation_even_with_isolated_vertices() {
        // Diagonal-only matrix: every vertex is isolated.
        let mut coo = Coo::new(5, 5);
        for i in 0..5 {
            coo.push(i, i, 1.0).unwrap();
        }
        let p = rcm(&coo.to_csr());
        assert_eq!(p.len(), 5);
    }

    #[test]
    fn rcm_deterministic() {
        let m =
            crate::gen::rmat(&crate::gen::RmatConfig { n: 128, edges: 500, ..Default::default() });
        assert_eq!(rcm(&m), rcm(&m));
    }

    #[test]
    fn bandwidth_of_diagonal_is_zero() {
        let mut coo = Coo::new(4, 4);
        for i in 0..4 {
            coo.push(i, i, 1.0).unwrap();
        }
        assert_eq!(bandwidth(&coo.to_csr()), 0);
    }

    #[test]
    fn identity_permutation_is_noop() {
        let m = crate::gen::banded(&crate::gen::BandedConfig { n: 32, ..Default::default() });
        let p = Permutation::identity(32);
        assert_eq!(p.apply_symmetric(&m), m);
        assert!(!p.is_empty());
    }
}
