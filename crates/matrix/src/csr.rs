use crate::{Coo, MatrixError, MatrixStats};

/// A sparse matrix in Compressed Sparse Row (CSR) format (paper Section II-A,
/// Figure 1).
///
/// CSR stores three arrays: `row_ptr` (length `rows + 1`), `col_idx` and
/// `vals` (both length `nnz`). Row `i`'s non-zeros occupy the half-open range
/// `row_ptr[i]..row_ptr[i + 1]` of `col_idx`/`vals`. SpaceA consumes CSR
/// directly: its mapping algorithm partitions CSR rows across processing
/// elements and its DRAM layout packs `(col_idx, value)` pairs per DRAM row.
///
/// # Example
///
/// ```
/// use spacea_matrix::Csr;
///
/// # fn main() -> Result<(), spacea_matrix::MatrixError> {
/// // [ 1 0 2 ]
/// // [ 0 3 0 ]
/// let csr = Csr::from_parts(2, 3, vec![0, 2, 3], vec![0, 2, 1], vec![1.0, 2.0, 3.0])?;
/// assert_eq!(csr.spmv(&[1.0, 1.0, 1.0]), vec![3.0, 3.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Csr {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    vals: Vec<f64>,
}

impl Csr {
    /// Builds a CSR matrix from raw arrays, validating their consistency.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::MalformedCsr`] when the arrays are inconsistent:
    /// wrong `row_ptr` length, non-monotone `row_ptr`, mismatched
    /// `col_idx`/`vals` lengths, or a column index out of range.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        vals: Vec<f64>,
    ) -> Result<Self, MatrixError> {
        if row_ptr.len() != rows + 1 {
            return Err(MatrixError::MalformedCsr(format!(
                "row_ptr has length {} but expected {}",
                row_ptr.len(),
                rows + 1
            )));
        }
        if col_idx.len() != vals.len() {
            return Err(MatrixError::MalformedCsr(format!(
                "col_idx length {} != vals length {}",
                col_idx.len(),
                vals.len()
            )));
        }
        if row_ptr.first() != Some(&0) || row_ptr.last() != Some(&col_idx.len()) {
            return Err(MatrixError::MalformedCsr(
                "row_ptr must start at 0 and end at nnz".to_string(),
            ));
        }
        if row_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(MatrixError::MalformedCsr("row_ptr must be non-decreasing".to_string()));
        }
        if let Some(&bad) = col_idx.iter().find(|&&c| c as usize >= cols) {
            return Err(MatrixError::MalformedCsr(format!(
                "column index {bad} out of range for {cols} columns"
            )));
        }
        Ok(Csr { rows, cols, row_ptr, col_idx, vals })
    }

    /// Parses a MatrixMarket (`.mtx`) document.
    ///
    /// Convenience wrapper over [`crate::mmio::read_str`]: accepts the
    /// `coordinate real/integer/pattern general/symmetric` subset, expands
    /// symmetric storage, and returns the canonical CSR every
    /// [`SparseFormat`](crate::formats::SparseFormat) builds from.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::Parse`] for headers or entries outside the
    /// supported subset.
    pub fn from_mtx(text: &str) -> Result<Self, MatrixError> {
        crate::mmio::read_str(text)
    }

    /// Converts from COO, sorting by `(row, col)` and summing duplicates.
    pub fn from_coo(coo: &Coo) -> Self {
        let mut entries: Vec<(u32, u32, f64)> = coo.entries().to_vec();
        entries.sort_unstable_by_key(|&(r, c, _)| (r, c));

        let mut row_ptr = vec![0usize; coo.rows() + 1];
        let mut col_idx = Vec::with_capacity(entries.len());
        let mut vals: Vec<f64> = Vec::with_capacity(entries.len());

        let mut prev: Option<(u32, u32)> = None;
        for &(r, c, v) in &entries {
            if prev == Some((r, c)) {
                // Duplicate coordinate: sum values (Matrix Market
                // convention). A previous entry exists whenever `prev` is
                // set, so the fold never misses.
                if let Some(last) = vals.last_mut() {
                    *last += v;
                    continue;
                }
            }
            prev = Some((r, c));
            col_idx.push(c);
            vals.push(v);
            row_ptr[r as usize + 1] += 1;
        }
        // Prefix-sum the per-row counts into offsets.
        for i in 0..coo.rows() {
            row_ptr[i + 1] += row_ptr[i];
        }
        Csr { rows: coo.rows(), cols: coo.cols(), row_ptr, col_idx, vals }
    }

    /// Number of rows (the paper's `m`).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (the paper's `n`).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zero elements (`nnz`).
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Returns `true` if the matrix stores no non-zeros.
    pub fn is_empty(&self) -> bool {
        self.col_idx.is_empty()
    }

    /// The `row_ptr` array (`rows + 1` entries).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The `col_idx` array (`nnz` entries).
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// The `vals` array (`nnz` entries).
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// Number of non-zeros in row `i` (the paper's `N_i`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row_nnz(&self, i: usize) -> usize {
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// The `(col_idx, value)` pairs of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        let range = self.row_ptr[i]..self.row_ptr[i + 1];
        self.col_idx[range.clone()].iter().copied().zip(self.vals[range].iter().copied())
    }

    /// The column indices of row `i` (the paper's set `C_i`, possibly with
    /// duplicates if the matrix was built with them).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row_cols(&self, i: usize) -> &[u32] {
        &self.col_idx[self.row_ptr[i]..self.row_ptr[i + 1]]
    }

    /// Reference SpMV: computes `y = A x`.
    ///
    /// This is the software oracle used to validate every simulated run
    /// (Section V-A: "the correctness of the event triggering mechanism is
    /// validated by the values of the output vector").
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    #[allow(clippy::needless_range_loop)] // indexed kernels read clearer
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "input vector length must equal matrix columns");
        let mut y = vec![0.0; self.rows];
        for i in 0..self.rows {
            let mut acc = 0.0;
            for (c, v) in self.row(i) {
                acc += v * x[c as usize];
            }
            y[i] = acc;
        }
        y
    }

    /// Accumulating SpMV: computes `y = y + A x` (the paper's formulation).
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if the vector lengths do
    /// not match the matrix dimensions.
    #[allow(clippy::needless_range_loop)]
    pub fn spmv_acc(&self, x: &[f64], y: &mut [f64]) -> Result<(), MatrixError> {
        if x.len() != self.cols {
            return Err(MatrixError::DimensionMismatch { expected: self.cols, actual: x.len() });
        }
        if y.len() != self.rows {
            return Err(MatrixError::DimensionMismatch { expected: self.rows, actual: y.len() });
        }
        for i in 0..self.rows {
            let mut acc = 0.0;
            for (c, v) in self.row(i) {
                acc += v * x[c as usize];
            }
            y[i] += acc;
        }
        Ok(())
    }

    /// Returns the transpose as a new CSR matrix.
    ///
    /// Graph algorithms formulated as SpMV (Section V-F) multiply by the
    /// transpose of the adjacency matrix to gather over in-edges.
    pub fn transpose(&self) -> Csr {
        let mut row_ptr = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            row_ptr[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut cursor = row_ptr.clone();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut vals = vec![0.0f64; self.nnz()];
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                let dst = cursor[c as usize];
                col_idx[dst] = r as u32;
                vals[dst] = v;
                cursor[c as usize] += 1;
            }
        }
        Csr { rows: self.cols, cols: self.rows, row_ptr, col_idx, vals }
    }

    /// Converts back to COO (entries emitted in row-major order).
    pub fn to_coo(&self) -> Coo {
        let mut coo = Coo::new(self.rows, self.cols);
        coo.reserve(self.nnz());
        for i in 0..self.rows {
            for (c, v) in self.row(i) {
                // lint:allow(R1) CSR invariants keep entries in bounds
                coo.push(i, c as usize, v).expect("CSR entries are in bounds");
            }
        }
        coo
    }

    /// Computes the Table I statistics (`nnz`, mean row length μ, standard
    /// deviation σ) for this matrix.
    pub fn stats(&self) -> MatrixStats {
        MatrixStats::from_csr(self)
    }

    /// Bytes occupied by the CSR arrays (row_ptr as 4-byte offsets, 4-byte
    /// column indices, 8-byte values) — the traffic a streaming csrmv reads.
    pub fn csr_bytes(&self) -> usize {
        4 * (self.rows + 1) + 4 * self.nnz() + 8 * self.nnz()
    }

    /// Sparse matrix × dense multi-vector: `Y = A X` for `k` right-hand
    /// sides stored column-wise (`x_block[j]` is the j-th input vector).
    ///
    /// Iterative methods with multiple right-hand sides amortize the matrix
    /// stream across vectors; on SpaceA the same property amortizes the
    /// mapping and the DRAM row traffic.
    ///
    /// # Panics
    ///
    /// Panics if any input vector's length differs from `self.cols()`.
    pub fn spmm(&self, x_block: &[Vec<f64>]) -> Vec<Vec<f64>> {
        x_block.iter().map(|x| self.spmv(x)).collect()
    }

    /// Builds a CSR matrix from a dense row-major table, skipping zeros.
    ///
    /// # Panics
    ///
    /// Panics if the rows are ragged.
    pub fn from_dense(dense: &[Vec<f64>]) -> Csr {
        let rows = dense.len();
        let cols = dense.first().map_or(0, Vec::len);
        let mut coo = Coo::new(rows, cols);
        for (i, row) in dense.iter().enumerate() {
            assert_eq!(row.len(), cols, "dense rows must all have the same length");
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    // lint:allow(R1) dense loop indices are in bounds
                    coo.push(i, j, v).expect("dense coordinate in bounds");
                }
            }
        }
        coo.to_csr()
    }

    /// Expands to a dense row-major table (intended for small matrices in
    /// tests and examples; allocates `rows × cols` values).
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut out = vec![vec![0.0; self.cols]; self.rows];
        for (i, dst) in out.iter_mut().enumerate() {
            for (j, v) in self.row(i) {
                dst[j as usize] += v;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 3 4 0 ]
        Csr::from_parts(3, 3, vec![0, 2, 2, 4], vec![0, 2, 0, 1], vec![1.0, 2.0, 3.0, 4.0]).unwrap()
    }

    #[test]
    fn from_parts_validates_row_ptr_len() {
        let err = Csr::from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).unwrap_err();
        assert!(matches!(err, MatrixError::MalformedCsr(_)));
    }

    #[test]
    fn from_parts_validates_monotonicity() {
        let err = Csr::from_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(err, MatrixError::MalformedCsr(_)));
    }

    #[test]
    fn from_parts_validates_last_ptr() {
        let err = Csr::from_parts(1, 2, vec![0, 3], vec![0, 1], vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(err, MatrixError::MalformedCsr(_)));
    }

    #[test]
    fn from_parts_validates_col_range() {
        let err = Csr::from_parts(1, 2, vec![0, 1], vec![2], vec![1.0]).unwrap_err();
        assert!(matches!(err, MatrixError::MalformedCsr(_)));
    }

    #[test]
    fn spmv_matches_dense() {
        let csr = sample();
        assert_eq!(csr.spmv(&[1.0, 1.0, 1.0]), vec![3.0, 0.0, 7.0]);
        assert_eq!(csr.spmv(&[1.0, 0.0, 0.0]), vec![1.0, 0.0, 3.0]);
    }

    #[test]
    fn spmv_acc_accumulates() {
        let csr = sample();
        let mut y = vec![10.0, 10.0, 10.0];
        csr.spmv_acc(&[1.0, 1.0, 1.0], &mut y).unwrap();
        assert_eq!(y, vec![13.0, 10.0, 17.0]);
    }

    #[test]
    fn spmv_acc_checks_dims() {
        let csr = sample();
        let mut y = vec![0.0; 2];
        assert!(csr.spmv_acc(&[1.0, 1.0, 1.0], &mut y).is_err());
        let mut y3 = vec![0.0; 3];
        assert!(csr.spmv_acc(&[1.0, 1.0], &mut y3).is_err());
    }

    #[test]
    fn from_coo_sorts_rows() {
        let mut coo = Coo::new(2, 2);
        coo.push(1, 0, 4.0).unwrap();
        coo.push(0, 1, 2.0).unwrap();
        coo.push(0, 0, 1.0).unwrap();
        let csr = Csr::from_coo(&coo);
        assert_eq!(csr.row_ptr(), &[0, 2, 3]);
        assert_eq!(csr.col_idx(), &[0, 1, 0]);
        assert_eq!(csr.vals(), &[1.0, 2.0, 4.0]);
    }

    #[test]
    fn from_coo_merges_duplicates() {
        let mut coo = Coo::new(1, 2);
        coo.push(0, 1, 2.0).unwrap();
        coo.push(0, 1, 3.0).unwrap();
        let csr = Csr::from_coo(&coo);
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.vals(), &[5.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let csr = sample();
        let t = csr.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.spmv(&[1.0, 0.0, 1.0]), vec![4.0, 4.0, 2.0]);
        assert_eq!(t.transpose(), csr);
    }

    #[test]
    fn coo_roundtrip() {
        let csr = sample();
        assert_eq!(Csr::from_coo(&csr.to_coo()), csr);
    }

    #[test]
    fn row_accessors() {
        let csr = sample();
        assert_eq!(csr.row_nnz(0), 2);
        assert_eq!(csr.row_nnz(1), 0);
        assert_eq!(csr.row_cols(2), &[0, 1]);
        let row0: Vec<_> = csr.row(0).collect();
        assert_eq!(row0, vec![(0, 1.0), (2, 2.0)]);
    }

    #[test]
    fn csr_bytes_counts_arrays() {
        let csr = sample();
        // 4 row_ptr entries * 4B + 4 nnz * (4 + 8)B
        assert_eq!(csr.csr_bytes(), 16 + 48);
    }

    #[test]
    fn spmm_matches_per_vector_spmv() {
        let csr = sample();
        let xs = vec![vec![1.0, 0.0, 2.0], vec![0.5, 0.5, 0.5]];
        let ys = csr.spmm(&xs);
        assert_eq!(ys.len(), 2);
        for (x, y) in xs.iter().zip(&ys) {
            assert_eq!(y, &csr.spmv(x));
        }
    }

    #[test]
    fn dense_roundtrip() {
        let dense = vec![vec![1.0, 0.0, 2.0], vec![0.0, 0.0, 0.0], vec![0.0, 3.0, 0.0]];
        let csr = Csr::from_dense(&dense);
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.to_dense(), dense);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn from_dense_rejects_ragged() {
        Csr::from_dense(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn empty_matrix() {
        let csr = Csr::from_parts(0, 0, vec![0], vec![], vec![]).unwrap();
        assert!(csr.is_empty());
        assert_eq!(csr.spmv(&[]), Vec::<f64>::new());
    }
}
