//! MatrixMarket fixture tests: `.mtx` files on disk load through
//! `Csr::from_mtx` / `mmio::read_file` and feed the format suite, so
//! nothing downstream is suite-only.

use spacea_matrix::formats::FormatKind;
use spacea_matrix::{mmio, Csr};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{}", env!("CARGO_MANIFEST_DIR"), name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

#[test]
fn symmetric_real_fixture_expands() {
    let a = Csr::from_mtx(&fixture("bar5.mtx")).unwrap();
    assert_eq!((a.rows(), a.cols()), (5, 5));
    // 9 stored entries, 4 off-diagonal, mirrored on expansion.
    assert_eq!(a.nnz(), 13);
    // Symmetry: A == Aᵀ.
    assert_eq!(a.transpose(), a);
    // The diagonal is 4.0 everywhere.
    for i in 0..5 {
        assert!(a.row(i).any(|(c, v)| c as usize == i && v == 4.0), "row {i}");
    }
}

#[test]
fn pattern_general_fixture_reads_unit_values() {
    let a = Csr::from_mtx(&fixture("web4.mtx")).unwrap();
    assert_eq!((a.rows(), a.cols(), a.nnz()), (4, 4, 6));
    assert!(a.vals().iter().all(|&v| v == 1.0));
    // Out-degrees from the link list: 2, 1, 1, 2.
    let deg: Vec<usize> = (0..4).map(|i| a.row_nnz(i)).collect();
    assert_eq!(deg, vec![2, 1, 1, 2]);
}

#[test]
fn fixtures_read_identically_via_file_and_str() {
    for name in ["bar5.mtx", "web4.mtx"] {
        let path = format!("{}/tests/fixtures/{}", env!("CARGO_MANIFEST_DIR"), name);
        let via_file = mmio::read_file(&path).unwrap();
        let via_str = Csr::from_mtx(&fixture(name)).unwrap();
        assert_eq!(via_file, via_str, "{name}");
    }
}

#[test]
fn fixtures_drive_the_format_suite() {
    for name in ["bar5.mtx", "web4.mtx"] {
        let a = Csr::from_mtx(&fixture(name)).unwrap();
        let x: Vec<f64> = (0..a.cols()).map(|i| 1.0 + i as f64 * 0.5).collect();
        let want: Vec<u64> = a.spmv(&x).iter().map(|v| v.to_bits()).collect();
        for kind in FormatKind::ALL {
            let f = kind.build(&a);
            assert_eq!(f.to_csr(), a, "{name} via {kind}");
            let got: Vec<u64> = f.spmv(&x).iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, want, "{name} via {kind}");
        }
    }
}

#[test]
fn from_mtx_rejects_garbage() {
    assert!(Csr::from_mtx("%%MatrixMarket matrix array real general\n1 1\n1.0\n").is_err());
    assert!(Csr::from_mtx("not a matrix at all").is_err());
}
