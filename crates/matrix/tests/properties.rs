//! Property tests for the matrix substrate: format invariants, generator
//! guarantees, and statistics consistency.

use proptest::prelude::*;
use spacea_matrix::gen::{banded, rmat, uniform_random, BandedConfig, RmatConfig, UniformConfig};
use spacea_matrix::{Coo, MatrixStats};

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn banded_generator_invariants(
        n in 16usize..400,
        mean in 2.0f64..24.0,
        stddev in 0.0f64..8.0,
        seed in 0u64..1000,
    ) {
        let cfg = BandedConfig { n, mean_row_nnz: mean, stddev_row_nnz: stddev, seed, ..Default::default() };
        let m = banded(&cfg);
        prop_assert_eq!(m.rows(), n);
        prop_assert_eq!(m.cols(), n);
        for i in 0..n {
            prop_assert!(m.row_nnz(i) >= 1, "row {} empty", i);
            // Columns sorted and unique within a row.
            let cols = m.row_cols(i);
            for w in cols.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        }
        prop_assert_eq!(banded(&cfg), m, "determinism");
    }

    #[test]
    fn rmat_generator_invariants(
        n in 16usize..400,
        edges in 1usize..2000,
        seed in 0u64..1000,
    ) {
        let cfg = RmatConfig { n, edges, seed, ..Default::default() };
        let m = rmat(&cfg);
        prop_assert_eq!(m.rows(), n);
        prop_assert!(m.nnz() >= n, "self-loops guarantee nnz >= n");
        prop_assert!(m.nnz() <= n + edges);
        prop_assert_eq!(rmat(&cfg), m, "determinism");
    }

    #[test]
    fn uniform_generator_exact_degree(
        rows in 1usize..120,
        cols in 1usize..120,
        row_nnz in 1usize..16,
        seed in 0u64..1000,
    ) {
        let m = uniform_random(&UniformConfig { rows, cols, row_nnz, seed });
        let expect = row_nnz.min(cols).max(1);
        for i in 0..rows {
            prop_assert_eq!(m.row_nnz(i), expect);
        }
    }

    #[test]
    fn stats_are_consistent(entries in proptest::collection::vec((0usize..40, 0usize..40, 0.5f64..2.0), 1..200)) {
        let mut coo = Coo::new(40, 40);
        for (r, c, v) in entries {
            coo.push(r, c, v).expect("in range");
        }
        let m = coo.to_csr();
        let s = MatrixStats::from_csr(&m);
        prop_assert_eq!(s.nnz, m.nnz());
        prop_assert!((s.mean_row_nnz - m.nnz() as f64 / 40.0).abs() < 1e-12);
        prop_assert!(s.max_row_nnz <= m.nnz());
        prop_assert!(s.stddev_row_nnz >= 0.0);
        prop_assert!(s.diag_band_fraction >= 0.0 && s.diag_band_fraction <= 1.0);
        // Mean cannot exceed max.
        prop_assert!(s.mean_row_nnz <= s.max_row_nnz as f64 + 1e-12);
    }

    #[test]
    fn spmv_transpose_identity(entries in proptest::collection::vec((0usize..24, 0usize..24, -2.0f64..2.0), 1..120)) {
        // x^T (A y) == (A^T x)^T y — the adjoint identity that transpose
        // must satisfy.
        let mut coo = Coo::new(24, 24);
        for (r, c, v) in entries {
            coo.push(r, c, v).expect("in range");
        }
        let a = coo.to_csr();
        let x: Vec<f64> = (0..24).map(|i| (i as f64 * 0.37).sin()).collect();
        let y: Vec<f64> = (0..24).map(|i| (i as f64 * 0.53).cos()).collect();
        let ay = a.spmv(&y);
        let atx = a.transpose().spmv(&x);
        let lhs: f64 = x.iter().zip(&ay).map(|(p, q)| p * q).sum();
        let rhs: f64 = atx.iter().zip(&y).map(|(p, q)| p * q).sum();
        prop_assert!((lhs - rhs).abs() < 1e-9, "{} vs {}", lhs, rhs);
    }

    #[test]
    fn csr_bytes_formula(entries in proptest::collection::vec((0usize..20, 0usize..20, 1.0f64..2.0), 0..100)) {
        let mut coo = Coo::new(20, 20);
        for (r, c, v) in entries {
            coo.push(r, c, v).expect("in range");
        }
        let m = coo.to_csr();
        prop_assert_eq!(m.csr_bytes(), 4 * 21 + 12 * m.nnz());
    }
}
