//! Property tests for the format subsystem contracts (DESIGN.md §8):
//! every `SparseFormat` round-trips through every other format losslessly,
//! and each format's reference `spmv` is bitwise-equal to `Csr::spmv` on
//! the generator suite.

use proptest::prelude::*;
use spacea_matrix::formats::{convert, FormatKind};
use spacea_matrix::gen::{banded, rmat, uniform_random, BandedConfig, RmatConfig, UniformConfig};
use spacea_matrix::Csr;

/// One generator-suite matrix per shape family, parameterized by the
/// proptest case.
fn generated(family: u8, n: usize, seed: u64) -> Csr {
    match family % 3 {
        0 => banded(&BandedConfig {
            n,
            mean_row_nnz: 6.0,
            stddev_row_nnz: 2.0,
            seed,
            ..Default::default()
        }),
        1 => rmat(&RmatConfig { n, edges: n * 4, seed, ..Default::default() }),
        _ => uniform_random(&UniformConfig { rows: n, cols: n, row_nnz: 3, seed }),
    }
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// A → B → CSR is lossless for every ordered format pair, preserving
    /// nnz order semantics (CSR equality covers arrays, not just values).
    #[test]
    fn every_format_pair_round_trips(family in 0u8..3, n in 16usize..200, seed in 0u64..1000) {
        let a = generated(family, n, seed);
        for from in FormatKind::ALL {
            let f = from.build(&a);
            prop_assert_eq!(&f.to_csr(), &a, "{} direct", from);
            for to in FormatKind::ALL {
                let g = convert(f.as_ref(), to);
                prop_assert_eq!(&g.to_csr(), &a, "{} -> {}", from, to);
            }
        }
    }

    /// Each format's reference SpMV is bitwise-equal to `Csr::spmv`.
    #[test]
    fn every_format_spmv_is_bitwise_csr(
        family in 0u8..3,
        n in 16usize..200,
        seed in 0u64..1000,
        xseed in 0u64..100,
    ) {
        let a = generated(family, n, seed);
        // A deterministic but irregular input vector, including negatives.
        let x: Vec<f64> = (0..a.cols())
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(xseed);
                (h % 1009) as f64 / 251.0 - 2.0
            })
            .collect();
        let want = bits(&a.spmv(&x));
        for kind in FormatKind::ALL {
            prop_assert_eq!(&bits(&kind.build(&a).spmv(&x)), &want, "{}", kind);
        }
    }

    /// Storage models stay coherent: positive byte counts, slots cover the
    /// nnz, and the stream names exactly the stored slots.
    #[test]
    fn storage_and_stream_models_are_coherent(family in 0u8..3, n in 16usize..200, seed in 0u64..1000) {
        let a = generated(family, n, seed);
        for kind in FormatKind::ALL {
            let f = kind.build(&a);
            prop_assert!(f.bytes() > 0, "{}", kind);
            prop_assert!(f.stored_slots() >= f.nnz(), "{}", kind);
            let stream = f.stream_rows();
            prop_assert_eq!(stream.len(), f.stored_slots(), "{}", kind);
            let live = stream.iter().filter(|&&r| r != spacea_matrix::formats::PAD).count();
            prop_assert_eq!(live, f.nnz(), "{} stream must name each nnz once", kind);
            let pattern = f.storage_pattern();
            prop_assert!(pattern.nnz() >= a.nnz(), "{}", kind);
            prop_assert_eq!((pattern.rows(), pattern.cols()), (a.rows(), a.cols()), "{}", kind);
        }
    }
}
