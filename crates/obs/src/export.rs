//! Timeline exporters: CSV, Chrome trace-event JSON, and terminal
//! sparklines.
//!
//! The Chrome trace output loads directly in [Perfetto](https://ui.perfetto.dev)
//! or `chrome://tracing`: one process ("spacea"), one thread track per
//! vault, each gauge as a counter track (named `vaultN/component/metric`)
//! with one counter event per aggregation window, and duration slices
//! (`ph: "X"`) on the vault threads. Timestamps map cycles to microseconds
//! at an assumed 1 GHz clock (1000 cycles = 1 µs), which keeps Perfetto's
//! time axis readable without claiming wall-clock accuracy.

use crate::json::{escape, fmt_num};
use crate::sampler::Timeline;
use std::fmt::Write as _;

/// Cycles per exported microsecond (1 GHz: cycle N lands at N/1000 µs).
const CYCLES_PER_US: f64 = 1000.0;

impl Timeline {
    /// Renders the gauge series as CSV with one row per aggregation window:
    /// `metric,vault,window_start,window_len,count,mean,min,max,last`.
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("metric,vault,window_start,window_len,count,mean,min,max,last\n");
        for (key, series) in &self.series {
            let vault = key.vault.map(|v| v.to_string()).unwrap_or_default();
            for w in series.windows() {
                let _ = writeln!(
                    out,
                    "{}/{},{},{},{},{},{},{},{},{}",
                    key.component,
                    key.name,
                    vault,
                    w.start,
                    series.window_len(),
                    w.count,
                    fmt_num(w.mean()),
                    fmt_num(w.min),
                    fmt_num(w.max),
                    fmt_num(w.last),
                );
            }
        }
        out
    }

    /// Renders the timeline as a Chrome trace-event JSON document.
    pub fn to_chrome_trace(&self) -> String {
        let mut events: Vec<String> = Vec::new();
        events.push(
            "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\
             \"args\":{\"name\":\"spacea\"}}"
                .to_string(),
        );
        for v in self.vaults() {
            events.push(format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{v},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"vault {v}\"}}}}"
            ));
        }
        for (key, series) in &self.series {
            let track = escape(&key.track_name());
            for w in series.windows() {
                events.push(format!(
                    "{{\"ph\":\"C\",\"pid\":1,\"name\":\"{track}\",\"ts\":{ts},\
                     \"args\":{{\"value\":{value}}}}}",
                    ts = fmt_num(w.start as f64 / CYCLES_PER_US),
                    value = fmt_num(w.mean()),
                ));
            }
        }
        for slice in &self.slices {
            let tid = slice.vault.unwrap_or(0);
            let dur = slice.end.saturating_sub(slice.start).max(1);
            events.push(format!(
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"name\":\"{name}\",\
                 \"ts\":{ts},\"dur\":{dur}}}",
                name = escape(&slice.name),
                ts = fmt_num(slice.start as f64 / CYCLES_PER_US),
                dur = fmt_num(dur as f64 / CYCLES_PER_US),
            ));
        }
        let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
        out.push_str(&events.join(",\n"));
        out.push_str("\n]}\n");
        out
    }

    /// One `name  min..max  sparkline` line per series, for terminal
    /// summaries.
    pub fn summary(&self) -> String {
        let width = self.series.iter().map(|(k, _)| k.track_name().len()).max().unwrap_or(0);
        let mut out = String::new();
        for (key, series) in &self.series {
            let means: Vec<f64> = series.windows().iter().map(|w| w.mean()).collect();
            let _ = writeln!(
                out,
                "{:width$}  mean {:>10}  peak {:>10}  {}",
                key.track_name(),
                fmt_num(series.mean()),
                fmt_num(series.peak()),
                sparkline(&means),
            );
        }
        out
    }
}

/// Renders values as a unicode sparkline (`▁▂▃▄▅▆▇█`), scaled to the
/// value range; an empty input renders as an empty string.
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if !lo.is_finite() {
        return String::new();
    }
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                return BARS[0];
            }
            let t = ((v - lo) / span * 7.0).round() as usize;
            BARS[t.min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_chrome_trace;
    use crate::sampler::{MetricKey, Slice};
    use crate::series::Series;

    fn sample_timeline() -> Timeline {
        let mut a = Series::new(8, 10);
        a.record(0, 1.0);
        a.record(10, 3.0);
        let mut b = Series::new(8, 10);
        b.record(0, 0.25);
        Timeline {
            series: vec![
                (MetricKey::vault("ldq", 0, "l1-occupancy"), a),
                (MetricKey::global("noc", "utilization"), b),
            ],
            slices: vec![Slice { vault: Some(0), name: "X block 1".into(), start: 5, end: 25 }],
        }
    }

    #[test]
    fn chrome_trace_is_valid_and_tracked_per_vault() {
        let text = sample_timeline().to_chrome_trace();
        let summary = validate_chrome_trace(&text).unwrap();
        assert_eq!(summary.counter_events, 3);
        assert_eq!(summary.duration_events, 1);
        assert!(summary.counter_tracks.contains(&"vault0/ldq/l1-occupancy".to_string()));
        assert!(summary.counter_tracks.contains(&"noc/utilization".to_string()));
        // Vault 0 got a thread_name metadata record alongside the process's.
        assert_eq!(summary.metadata_events, 2);
    }

    #[test]
    fn csv_has_one_row_per_window() {
        let csv = sample_timeline().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4, "header + 3 windows");
        assert!(lines[0].starts_with("metric,vault,"));
        assert!(lines[1].starts_with("ldq/l1-occupancy,0,0,10,1,1,"));
    }

    #[test]
    fn sparkline_scales_to_range() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[1.0]), "▁");
        let line = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(line.chars().count(), 3);
        assert!(line.starts_with('▁') && line.ends_with('█'));
    }

    #[test]
    fn summary_renders_each_series() {
        let text = sample_timeline().summary();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("vault0/ldq/l1-occupancy"));
        assert!(text.contains("noc/utilization"));
    }
}
