//! Bounded, self-downsampling time series.
//!
//! A [`Series`] holds at most `capacity` [`Window`]s of `window_len` cycles
//! each. Samples merge into the window covering their cycle; when a new
//! window would exceed the capacity, adjacent windows are merged pairwise
//! and the window length doubles. Merging adds counts and sums (and takes
//! min/max/last), so the series' total count, total sum — and therefore its
//! running mean — are exact at any downsampling level; only the time
//! resolution degrades.

use spacea_sim::Cycle;

/// One aggregation window: every sample whose cycle fell in
/// `[start, start + window_len)`, summarized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Window {
    /// First cycle this window covers (aligned to the series' window
    /// length).
    pub start: Cycle,
    /// Samples merged into this window.
    pub count: u64,
    /// Sum of the merged sample values.
    pub sum: f64,
    /// Smallest merged value.
    pub min: f64,
    /// Largest merged value.
    pub max: f64,
    /// The most recently merged value.
    pub last: f64,
}

impl Window {
    fn from_sample(start: Cycle, value: f64) -> Self {
        Window { start, count: 1, sum: value, min: value, max: value, last: value }
    }

    fn absorb_sample(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.last = value;
    }

    /// Merges a later window into this one (used when downsampling).
    fn absorb_window(&mut self, later: &Window) {
        self.count += later.count;
        self.sum += later.sum;
        self.min = self.min.min(later.min);
        self.max = self.max.max(later.max);
        self.last = later.last;
    }

    /// Mean of the samples in this window.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A bounded series of cycle-aligned windows.
///
/// Samples must arrive in non-decreasing cycle order (the event loop's
/// order); a sample older than the open window folds into that window
/// rather than rewriting history.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    capacity: usize,
    window_len: Cycle,
    windows: Vec<Window>,
}

impl Series {
    /// A series holding at most `capacity` windows (clamped to ≥ 2), each
    /// initially `resolution` cycles long (clamped to ≥ 1).
    pub fn new(capacity: usize, resolution: Cycle) -> Self {
        let capacity = capacity.max(2);
        Series { capacity, window_len: resolution.max(1), windows: Vec::new() }
    }

    /// Records one sample, downsampling if the series is full.
    pub fn record(&mut self, cycle: Cycle, value: f64) {
        let start = cycle - cycle % self.window_len;
        match self.windows.last_mut() {
            Some(open) if start <= open.start => open.absorb_sample(value),
            _ => {
                self.windows.push(Window::from_sample(start, value));
                while self.windows.len() > self.capacity {
                    self.compress();
                }
            }
        }
    }

    /// Halves the resolution: doubles the window length and merges windows
    /// that now share an aligned start.
    fn compress(&mut self) {
        self.window_len *= 2;
        let mut merged: Vec<Window> = Vec::with_capacity(self.windows.len() / 2 + 1);
        for w in &self.windows {
            let start = w.start - w.start % self.window_len;
            match merged.last_mut() {
                Some(open) if open.start == start => open.absorb_window(w),
                _ => {
                    let mut nw = *w;
                    nw.start = start;
                    merged.push(nw);
                }
            }
        }
        self.windows = merged;
    }

    /// The aggregated windows, oldest first. Never more than the capacity.
    pub fn windows(&self) -> &[Window] {
        &self.windows
    }

    /// Current cycles-per-window (doubles on every downsampling pass).
    pub fn window_len(&self) -> Cycle {
        self.window_len
    }

    /// The configured maximum window count.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Total samples recorded, across all downsampling.
    pub fn total_count(&self) -> u64 {
        self.windows.iter().map(|w| w.count).sum()
    }

    /// Sum of every recorded value, across all downsampling.
    pub fn total_sum(&self) -> f64 {
        self.windows.iter().map(|w| w.sum).sum()
    }

    /// Exact running mean of every recorded value.
    pub fn mean(&self) -> f64 {
        let n = self.total_count();
        if n == 0 {
            0.0
        } else {
            self.total_sum() / n as f64
        }
    }

    /// The most recently recorded value, if any.
    pub fn last(&self) -> Option<f64> {
        self.windows.last().map(|w| w.last)
    }

    /// Start cycle of the first window, if any.
    pub fn first_start(&self) -> Option<Cycle> {
        self.windows.first().map(|w| w.start)
    }

    /// Largest single value ever recorded.
    pub fn peak(&self) -> f64 {
        self.windows.iter().fold(0.0f64, |m, w| m.max(w.max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn windows_aggregate_in_order() {
        let mut s = Series::new(8, 10);
        s.record(0, 1.0);
        s.record(5, 3.0);
        s.record(12, 5.0);
        assert_eq!(s.windows().len(), 2);
        assert_eq!(s.windows()[0].count, 2);
        assert_eq!(s.windows()[0].mean(), 2.0);
        assert_eq!(s.windows()[1].start, 10);
        assert_eq!(s.last(), Some(5.0));
        assert_eq!(s.mean(), 3.0);
    }

    #[test]
    fn overflow_downsamples_instead_of_growing() {
        let mut s = Series::new(4, 1);
        for c in 0..1000u64 {
            s.record(c, c as f64);
            assert!(s.windows().len() <= 4, "cycle {c}: {} windows", s.windows().len());
        }
        assert_eq!(s.total_count(), 1000);
        assert!(s.window_len() >= 256, "1000 samples over 4 windows need len ≥ 256");
        assert_eq!(s.last(), Some(999.0));
        assert_eq!(s.first_start(), Some(0));
        let exact_mean = (0..1000).sum::<u64>() as f64 / 1000.0;
        assert!((s.mean() - exact_mean).abs() < 1e-9);
    }

    #[test]
    fn sparse_cycles_still_bound_memory() {
        let mut s = Series::new(3, 1);
        for i in 0..64u64 {
            // Exponentially spread cycles: pairwise merging needs several
            // passes before neighbours share a window.
            s.record(i * i * 1000, 1.0);
            assert!(s.windows().len() <= 3);
        }
        assert_eq!(s.total_count(), 64);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
        fn capacity_and_means_survive_downsampling(
            capacity in 2usize..10,
            resolution in 1u64..64,
            steps in proptest::collection::vec((0u64..5000, 0.0f64..100.0), 1..400),
        ) {
            let mut s = Series::new(capacity, resolution);
            let mut cycle = 0u64;
            let mut exact_sum = 0.0;
            let mut first_cycle = None;
            let mut last_value = 0.0;
            for (gap, value) in &steps {
                cycle += gap;
                first_cycle.get_or_insert(cycle);
                exact_sum += value;
                last_value = *value;
                s.record(cycle, *value);
                // The sampler's memory bound: never more windows than
                // configured, no matter how many cycles go by.
                prop_assert!(s.windows().len() <= capacity.max(2));
            }
            // Downsampling preserves the sample count and sum exactly, so
            // the running mean is exact too.
            prop_assert_eq!(s.total_count(), steps.len() as u64);
            prop_assert!((s.total_sum() - exact_sum).abs() <= 1e-6 * exact_sum.abs().max(1.0));
            // First window still covers the first sample; the last value
            // survives every merge.
            let first = first_cycle.unwrap();
            prop_assert!(s.first_start().unwrap() <= first);
            prop_assert!(s.first_start().unwrap() + s.window_len() > first);
            prop_assert_eq!(s.last().unwrap(), last_value);
            // Windows stay ordered and aligned.
            for w in s.windows().windows(2) {
                prop_assert!(w[0].start < w[1].start);
            }
            for w in s.windows() {
                prop_assert_eq!(w.start % s.window_len(), 0);
                prop_assert!(w.count > 0);
            }
        }
    }
}
