//! Gauge registration and cycle-cadenced sampling.
//!
//! A [`Sampler`] owns a registry of gauges keyed by
//! `(component, vault, name)` ([`MetricKey`]). Each gauge is a [`Probe`] —
//! any `Fn(&Ctx) -> f64` — read against the producer's context every time
//! [`Sampler::tick`] finds the sampling cadence due. Samples land in one
//! bounded [`Series`] per gauge, so sampling cost and memory are flat in
//! simulated time. Probes only *read* the context; ticking a sampler must
//! never perturb what it observes.

use crate::series::Series;
use spacea_sim::Cycle;
use std::collections::HashSet;
use std::fmt;

/// Identity of one gauge: which component, on which vault (if any), which
/// metric.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MetricKey {
    /// Component family (`"ldq"`, `"cam"`, `"dram"`, `"tsv"`, `"noc"`…).
    pub component: String,
    /// Global vault id for per-vault gauges, `None` for machine-wide ones.
    pub vault: Option<u32>,
    /// Metric name within the component (`"l1-occupancy"`, `"hit-rate"`…).
    pub name: String,
}

impl MetricKey {
    /// A per-vault gauge key.
    pub fn vault(component: &str, vault: usize, name: &str) -> Self {
        MetricKey { component: component.into(), vault: Some(vault as u32), name: name.into() }
    }

    /// A machine-wide gauge key.
    pub fn global(component: &str, name: &str) -> Self {
        MetricKey { component: component.into(), vault: None, name: name.into() }
    }

    /// The Perfetto counter-track name (`"vault3/ldq/l1-occupancy"`), one
    /// track per vault.
    pub fn track_name(&self) -> String {
        match self.vault {
            Some(v) => format!("vault{v}/{}/{}", self.component, self.name),
            None => format!("{}/{}", self.component, self.name),
        }
    }
}

impl fmt::Display for MetricKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.track_name())
    }
}

/// A gauge readable against a context of type `C`.
///
/// Blanket-implemented for every `Fn(&C) -> f64`, so producers register
/// plain closures capturing component indices.
pub trait Probe<C: ?Sized> {
    /// Reads the gauge's current value. Must not mutate the observed state.
    fn read(&self, ctx: &C) -> f64;
}

impl<C: ?Sized, F: Fn(&C) -> f64> Probe<C> for F {
    fn read(&self, ctx: &C) -> f64 {
        self(ctx)
    }
}

/// Sampling cadence and per-series memory bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplerConfig {
    /// Sample every N cycles (clamped to ≥ 1).
    pub every: Cycle,
    /// Maximum windows per series; on overflow the series downsamples.
    pub capacity: usize,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig { every: 4096, capacity: 256 }
    }
}

struct Gauge<C: ?Sized> {
    key: MetricKey,
    probe: Box<dyn Probe<C>>,
    series: Series,
}

/// Snapshots every registered gauge each time the cadence comes due.
pub struct Sampler<C: ?Sized> {
    cfg: SamplerConfig,
    next: Cycle,
    gauges: Vec<Gauge<C>>,
    seen: HashSet<MetricKey>,
}

impl<C: ?Sized> Sampler<C> {
    /// A sampler with no gauges; the first [`Sampler::tick`] samples
    /// immediately (cycle 0 is always covered).
    pub fn new(cfg: SamplerConfig) -> Self {
        let cfg = SamplerConfig { every: cfg.every.max(1), capacity: cfg.capacity };
        Sampler { cfg, next: 0, gauges: Vec::new(), seen: HashSet::new() }
    }

    /// Registers a gauge under `key`.
    ///
    /// # Panics
    ///
    /// Panics if `key` is already registered — two probes under one key
    /// would silently interleave into the same series, which is always a
    /// producer bug.
    pub fn register<P: Probe<C> + 'static>(&mut self, key: MetricKey, probe: P) {
        assert!(self.seen.insert(key.clone()), "duplicate metric key {key}");
        let series = Series::new(self.cfg.capacity, self.cfg.every);
        self.gauges.push(Gauge { key, probe: Box::new(probe), series });
    }

    /// Registered gauges.
    pub fn len(&self) -> usize {
        self.gauges.len()
    }

    /// True when no gauge is registered.
    pub fn is_empty(&self) -> bool {
        self.gauges.is_empty()
    }

    /// True when cycle `t` has reached the next sampling point. Cheap —
    /// callers on a hot path can guard [`Sampler::tick`] with this.
    pub fn due(&self, t: Cycle) -> bool {
        t >= self.next
    }

    /// Samples every gauge if the cadence is due at cycle `t`; otherwise a
    /// no-op. Call from the event loop with the current simulated time.
    pub fn tick(&mut self, t: Cycle, ctx: &C) {
        if !self.due(t) {
            return;
        }
        self.sample_now(t, ctx);
        self.next = (t - t % self.cfg.every) + self.cfg.every;
    }

    /// Samples every gauge unconditionally (used for a final snapshot at
    /// run end, so short runs still produce non-empty series).
    pub fn sample_now(&mut self, t: Cycle, ctx: &C) {
        for g in &mut self.gauges {
            g.series.record(t, g.probe.read(ctx));
        }
    }

    /// Consumes the sampler into its collected series (no slices yet — the
    /// producer attaches those from its own event trace).
    pub fn into_timeline(self) -> Timeline {
        Timeline {
            series: self.gauges.into_iter().map(|g| (g.key, g.series)).collect(),
            slices: Vec::new(),
        }
    }

    /// The value each gauge recorded at its most recent sample point, in
    /// registration order (gauges that never sampled are skipped).
    ///
    /// Every tick records exactly one value per gauge, so a producer that
    /// streams these `(key, value)` pairs at each window boundary hands an
    /// incremental flush sink everything needed to reconstruct the series
    /// exactly — O(gauges) per window instead of cloning whole series.
    pub fn last_samples(&self) -> impl Iterator<Item = (&MetricKey, f64)> {
        self.gauges.iter().filter_map(|g| g.series.last().map(|v| (&g.key, v)))
    }

    /// A copy of the series collected so far, without consuming the
    /// sampler. Producers call this at window boundaries to flush an
    /// incremental timeline artifact to disk, so a killed run still leaves
    /// a valid (truncated) timeline. Slices are derived from the event
    /// trace only at run end, so snapshots carry none.
    pub fn timeline_snapshot(&self) -> Timeline {
        Timeline {
            series: self.gauges.iter().map(|g| (g.key.clone(), g.series.clone())).collect(),
            slices: Vec::new(),
        }
    }
}

/// A duration slice on a vault's timeline track, derived by the producer
/// from its event trace (e.g. X-request issue → response arrival).
#[derive(Debug, Clone, PartialEq)]
pub struct Slice {
    /// Track the slice belongs to (`None` = the machine-wide track).
    pub vault: Option<u32>,
    /// Slice label (`"X block 12"`).
    pub name: String,
    /// First cycle of the slice.
    pub start: Cycle,
    /// One past the last cycle of the slice (`end ≥ start`).
    pub end: Cycle,
}

/// Everything one observed run collected: gauge series in registration
/// order plus derived duration slices. Export with
/// [`Timeline::to_chrome_trace`] / [`Timeline::to_csv`] (see
/// [`crate::export`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Timeline {
    /// Collected series, in gauge registration order.
    pub series: Vec<(MetricKey, Series)>,
    /// Derived duration slices, in start order.
    pub slices: Vec<Slice>,
}

impl Timeline {
    /// The series registered under `key`, if any.
    pub fn series(&self, key: &MetricKey) -> Option<&Series> {
        self.series.iter().find(|(k, _)| k == key).map(|(_, s)| s)
    }

    /// Global vault ids that have at least one per-vault series.
    pub fn vaults(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.series.iter().filter_map(|(k, _)| k.vault).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Ctx {
        depth: usize,
    }

    #[test]
    fn ticks_sample_on_cadence_only() {
        let mut s: Sampler<Ctx> = Sampler::new(SamplerConfig { every: 100, capacity: 16 });
        s.register(MetricKey::vault("ldq", 0, "occupancy"), |c: &Ctx| c.depth as f64);
        let mut ctx = Ctx { depth: 0 };
        for t in 0..1000u64 {
            ctx.depth = t as usize;
            s.tick(t, &ctx);
        }
        let tl = s.into_timeline();
        let series = tl.series(&MetricKey::vault("ldq", 0, "occupancy")).unwrap();
        assert_eq!(series.total_count(), 10, "every=100 over 1000 cycles is 10 samples");
        assert_eq!(series.last(), Some(900.0));
        assert_eq!(tl.vaults(), vec![0]);
    }

    #[test]
    fn first_tick_samples_cycle_zero() {
        let mut s: Sampler<Ctx> = Sampler::new(SamplerConfig::default());
        s.register(MetricKey::global("noc", "utilization"), |_: &Ctx| 7.0);
        s.tick(0, &Ctx { depth: 0 });
        let tl = s.into_timeline();
        assert_eq!(tl.series[0].1.total_count(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate metric key")]
    fn duplicate_keys_panic() {
        let mut s: Sampler<Ctx> = Sampler::new(SamplerConfig::default());
        s.register(MetricKey::vault("pe", 1, "pending"), |_: &Ctx| 0.0);
        s.register(MetricKey::vault("pe", 1, "pending"), |_: &Ctx| 1.0);
    }

    #[test]
    fn track_names_group_by_vault() {
        assert_eq!(
            MetricKey::vault("cam", 3, "l1-hit-rate").track_name(),
            "vault3/cam/l1-hit-rate"
        );
        assert_eq!(MetricKey::global("noc", "byte-hops").track_name(), "noc/byte-hops");
    }
}
