//! The registered-metric table: every gauge the machine may publish.
//!
//! Stat-ledger conservation depends on producers and consumers agreeing on
//! metric names: a typo in a [`crate::MetricKey`] string silently opens a
//! new ledger entry and drops the samples from everything keyed on the real
//! name (timeline export, observability assertions, `spacea-lint`'s S1
//! rule). This table is the single source of truth — add a row here in the
//! same change that registers a new gauge, and `spacea-lint --check` will
//! cross-check every literal `MetricKey::{vault,global}` construction in
//! `arch`/`backend`/`sim`/`serve` against it.

/// Every registered `(component, name)` gauge pair, sorted.
///
/// The `serve` rows are published by the `spacea-serve` daemon rather than
/// the machine: per-request queue latency, the width/cost of each fused
/// batch pass, and the request-lifecycle fault counters (load sheds,
/// transient-batch retries, deadline cancellations).
///
/// The `hbm` rows are published by `spacea-backend`'s Serpens-style HBM
/// model: per-channel stream accounting (keyed like per-vault machine
/// gauges, one channel per vault slot) plus run-level aggregates.
pub const METRICS: [(&str, &str); 24] = [
    ("cam", "l1-hit-rate"),
    ("cam", "l2-hit-rate"),
    ("dram", "row-hit-rate"),
    ("engine", "queue-depth"),
    ("hbm", "channel-bytes"),
    ("hbm", "channel-cycles"),
    ("hbm", "channel-stalls"),
    ("hbm", "reorder-stalls"),
    ("hbm", "utilization"),
    ("ldq", "l1-occupancy"),
    ("ldq", "l2-occupancy"),
    ("ldq", "queue-age"),
    ("noc", "byte-hops"),
    ("noc", "utilization"),
    ("pe", "pending"),
    ("serve", "batch-size"),
    ("serve", "cycles-per-request"),
    ("serve", "deadline-miss"),
    ("serve", "queue-age-us"),
    ("serve", "queue-depth"),
    ("serve", "queue-wait-us"),
    ("serve", "retries"),
    ("serve", "shed"),
    ("tsv", "bytes"),
];

/// True when `(component, name)` names a registered metric.
pub fn is_known(component: &str, name: &str) -> bool {
    METRICS.binary_search(&(component, name)).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_sorted_and_duplicate_free() {
        // binary_search in is_known requires sorted order.
        for w in METRICS.windows(2) {
            assert!(w[0] < w[1], "{w:?} out of order or duplicated");
        }
    }

    #[test]
    fn known_and_unknown_lookups() {
        assert!(is_known("tsv", "bytes"));
        assert!(is_known("ldq", "l1-occupancy"));
        assert!(!is_known("tvs", "bytes"), "typo must not resolve");
        assert!(!is_known("tsv", "byts"));
    }

    #[test]
    fn hbm_metrics_are_registered() {
        assert!(is_known("hbm", "channel-bytes"));
        assert!(is_known("hbm", "channel-cycles"));
        assert!(is_known("hbm", "channel-stalls"));
        assert!(is_known("hbm", "reorder-stalls"));
        assert!(is_known("hbm", "utilization"));
    }

    #[test]
    fn latency_probe_metrics_are_registered() {
        // The PR 4 leftover latency probes: entry-age gauges that tell a
        // stuck queue from a deep-but-moving one.
        assert!(is_known("ldq", "queue-age"));
        assert!(is_known("serve", "queue-age-us"));
    }

    #[test]
    fn serve_metrics_are_registered() {
        assert!(is_known("serve", "batch-size"));
        assert!(is_known("serve", "cycles-per-request"));
        assert!(is_known("serve", "queue-depth"));
        assert!(is_known("serve", "queue-wait-us"));
        assert!(is_known("serve", "shed"));
        assert!(is_known("serve", "retries"));
        assert!(is_known("serve", "deadline-miss"));
    }
}
