//! Minimal JSON support for timeline export.
//!
//! The harness' JSON dialect is integer-only (cache keys and counters), but
//! Chrome trace events carry fractional timestamps and gauge values, so this
//! module provides a float-capable writer plus a small recursive-descent
//! reader used by the `timeline --validate` bin to check exported files
//! without any external dependency.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Formats a number the way trace viewers expect: integers without a
/// fractional part, everything else via Rust's shortest round-trip `{}`
/// display. Non-finite values (which JSON cannot carry) degrade to `0`.
pub fn fmt_num(value: f64) -> String {
    if !value.is_finite() {
        return "0".into();
    }
    if value == value.trunc() && value.abs() < 9.0e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

/// Escapes a string for embedding in a JSON document (quotes not included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value. Objects use a sorted map, which is all the
/// validator needs; key order is not round-tripped.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects (`None` on other variants).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses a complete JSON document, rejecting trailing garbage.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => parse_str(b, pos).map(Value::Str),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>().map(Value::Num).map_err(|_| format!("bad number {text:?} at byte {start}"))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = Vec::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => {
                return String::from_utf8(out).map_err(|e| e.to_string());
            }
            b'\\' => {
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b'r' => out.push(b'\r'),
                    b't' => out.push(b'\t'),
                    b'b' => out.push(0x08),
                    b'f' => out.push(0x0c),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape digits")?;
                        *pos += 4;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to U+FFFD instead of failing.
                        let ch = char::from_u32(code).unwrap_or('\u{fffd}');
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                    }
                    other => return Err(format!("unknown escape \\{}", other as char)),
                }
            }
            c => out.push(c),
        }
    }
    Err("unterminated string".into())
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // consume '{'
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        map.insert(key, parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

/// What `validate_chrome_trace` learned about a trace file.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceSummary {
    /// Counter events (`ph == "C"`).
    pub counter_events: usize,
    /// Complete duration events (`ph == "X"`).
    pub duration_events: usize,
    /// Metadata events (`ph == "M"`).
    pub metadata_events: usize,
    /// Distinct counter-track names.
    pub counter_tracks: Vec<String>,
}

/// Validates `text` as a Chrome trace-event JSON object and summarizes it.
///
/// Checks the envelope (`traceEvents` array), then that every event has a
/// one-character `ph`, a `name`, and — for counter (`C`) and complete (`X`)
/// events — a numeric `ts` (plus `dur` and finite values where required).
pub fn validate_chrome_trace(text: &str) -> Result<TraceSummary, String> {
    let root = parse(text)?;
    let events =
        root.get("traceEvents").and_then(Value::as_arr).ok_or("missing \"traceEvents\" array")?;
    let mut summary = TraceSummary::default();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing \"ph\""))?;
        let name = ev
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing \"name\""))?;
        match ph {
            "M" => summary.metadata_events += 1,
            "C" => {
                ev.get("ts")
                    .and_then(Value::as_num)
                    .ok_or_else(|| format!("event {i} ({name}): counter without numeric ts"))?;
                let args =
                    ev.get("args").ok_or_else(|| format!("event {i} ({name}): missing args"))?;
                let value = args
                    .get("value")
                    .and_then(Value::as_num)
                    .ok_or_else(|| format!("event {i} ({name}): counter without args.value"))?;
                if !value.is_finite() {
                    return Err(format!("event {i} ({name}): non-finite counter value"));
                }
                summary.counter_events += 1;
                if !summary.counter_tracks.iter().any(|t| t == name) {
                    summary.counter_tracks.push(name.to_string());
                }
            }
            "X" => {
                let ts = ev
                    .get("ts")
                    .and_then(Value::as_num)
                    .ok_or_else(|| format!("event {i} ({name}): slice without numeric ts"))?;
                let dur = ev
                    .get("dur")
                    .and_then(Value::as_num)
                    .ok_or_else(|| format!("event {i} ({name}): slice without numeric dur"))?;
                if ts < 0.0 || dur < 0.0 {
                    return Err(format!("event {i} ({name}): negative ts/dur"));
                }
                summary.duration_events += 1;
            }
            other => return Err(format!("event {i} ({name}): unsupported ph {other:?}")),
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_round_trip_compactly() {
        assert_eq!(fmt_num(3.0), "3");
        assert_eq!(fmt_num(0.5), "0.5");
        assert_eq!(fmt_num(-12.0), "-12");
        assert_eq!(fmt_num(f64::NAN), "0");
        assert_eq!(fmt_num(f64::INFINITY), "0");
        for v in [0.1, 123.456, 1.0e-9, 9.5e15] {
            let parsed = parse(&fmt_num(v)).unwrap().as_num().unwrap();
            assert_eq!(parsed, v);
        }
    }

    #[test]
    fn escape_handles_controls_and_quotes() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(parse("\"a\\\"b\\\\c\\nd\\u0041\"").unwrap().as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn parser_reads_nested_documents() {
        let v = parse(r#"{"a": [1, 2.5, "x"], "b": {"c": true, "d": null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_num(), Some(2.5));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Bool(true)));
        assert!(parse("{\"a\": 1} junk").is_err());
        assert!(parse("[1, 2,]").is_err());
    }

    #[test]
    fn validator_accepts_minimal_trace() {
        let text = r#"{"displayTimeUnit":"ns","traceEvents":[
            {"ph":"M","pid":1,"name":"process_name","args":{"name":"spacea"}},
            {"ph":"C","pid":1,"name":"vault0/ldq/l1-occupancy","ts":0.5,"args":{"value":3}},
            {"ph":"X","pid":1,"tid":0,"name":"X block 1","ts":1,"dur":2}
        ]}"#;
        let summary = validate_chrome_trace(text).unwrap();
        assert_eq!(summary.counter_events, 1);
        assert_eq!(summary.duration_events, 1);
        assert_eq!(summary.metadata_events, 1);
        assert_eq!(summary.counter_tracks, vec!["vault0/ldq/l1-occupancy".to_string()]);
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace(r#"{"traceEvents":[{"name":"x"}]}"#).is_err());
        let bad_counter = r#"{"traceEvents":[{"ph":"C","name":"c","ts":0,"args":{}}]}"#;
        assert!(validate_chrome_trace(bad_counter).is_err());
    }
}
