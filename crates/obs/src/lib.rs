//! Cycle-sampled time-series observability with bounded memory.
//!
//! The aggregate counters in `spacea-sim::stats` say *how much* each
//! component did over a whole run; this crate records *when*: a [`Sampler`]
//! snapshots registered gauges — per-vault load-queue and PE occupancy, CAM
//! hit rates, DRAM row-buffer locality, NoC and TSV traffic — every N cycles
//! into fixed-capacity [`Series`]. When a series fills up it merges adjacent
//! windows and doubles its window length, so a billion-cycle run costs the
//! same memory as a thousand-cycle one while still preserving exact running
//! means (window merging adds counts and sums, it never re-averages).
//!
//! The collected [`Timeline`] exports to CSV and to Chrome trace-event JSON
//! that loads directly in [Perfetto](https://ui.perfetto.dev): one counter
//! track per gauge (grouped per vault) plus duration slices the machine
//! derives from its event trace. [`sparkline`] renders a one-line terminal
//! summary of any series.
//!
//! The crate deliberately depends only on `spacea-sim` (for the [`Cycle`]
//! type): any component that can expose an `Fn(&Ctx) -> f64` gauge can be
//! sampled, with `spacea-arch::machine` as the primary producer.

#![warn(missing_docs)]

pub mod export;
pub mod json;
pub mod registry;
pub mod sampler;
pub mod series;

pub use export::sparkline;
pub use sampler::{MetricKey, Probe, Sampler, SamplerConfig, Slice, Timeline};
pub use series::{Series, Window};

/// Simulated clock tick, re-exported from `spacea-sim` so probe authors
/// need only this crate.
pub use spacea_sim::Cycle;
