//! Packet formats (paper Section III-C).
//!
//! The vault controller processes three packet types: input-vector requests
//! (Type I), input-vector responses (Type II), and output partial results
//! (Type III).

/// Who is waiting for an input-vector response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Requester {
    /// A product bank group (global bank-group id) under some vault.
    BankGroup(usize),
    /// Another vault controller (global vault id).
    Vault(usize),
}

/// Byte sizes of the packets on TSVs and the NoC.
///
/// Request and matrix-data packets are independent of the batch width; the
/// data-carrying X-response and Y-partial packets scale with the number of
/// vectors `k` in a fused SpMM pass (one block / one partial per vector
/// behind a shared header), which is what amortizes row activations and
/// header overhead across the batch. At `k = 1` the scaled sizes equal the
/// single-vector constants, so SpMV timing is unchanged.
pub mod size {
    /// Type I: X request — block id + source routing info.
    pub const X_REQUEST: usize = 16;
    /// DRAM row transfer between bank and PE queue (local, no packet header).
    pub const DRAM_ROW: usize = 256;

    /// Type II size for a `k`-vector batch: one 32-byte block per vector
    /// plus the shared 8-byte header. `k = 1` is the paper's 40-byte
    /// single-vector response.
    pub const fn x_response_bytes(k: usize) -> usize {
        8 + 32 * k
    }

    /// Type III size for a `k`-vector batch: one `f64` partial per vector
    /// plus the shared row-index header. `k = 1` is the paper's 16-byte
    /// single-vector partial.
    pub const fn y_partial_bytes(k: usize) -> usize {
        8 + 8 * k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_carries_a_block() {
        // 4 × f64 = 32 data bytes plus an 8-byte header.
        assert_eq!(size::x_response_bytes(1), 32 + 8);
    }

    #[test]
    fn batched_sizes_reduce_to_the_paper_constants_at_k1() {
        assert_eq!(size::x_response_bytes(1), 40);
        assert_eq!(size::y_partial_bytes(1), 16);
        // A 4-vector batch ships 4 blocks behind one header: cheaper than
        // four single-vector responses.
        assert!(size::x_response_bytes(4) < 4 * size::x_response_bytes(1));
        assert!(size::y_partial_bytes(4) < 4 * size::y_partial_bytes(1));
    }

    #[test]
    fn requester_is_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(Requester::BankGroup(3));
        s.insert(Requester::Vault(3));
        assert_eq!(s.len(), 2);
    }
}
