//! Packet formats (paper Section III-C).
//!
//! The vault controller processes three packet types: input-vector requests
//! (Type I), input-vector responses (Type II), and output partial results
//! (Type III).

/// Who is waiting for an input-vector response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Requester {
    /// A product bank group (global bank-group id) under some vault.
    BankGroup(usize),
    /// Another vault controller (global vault id).
    Vault(usize),
}

/// Byte sizes of the packets on TSVs and the NoC.
pub mod size {
    /// Type I: X request — block id + source routing info.
    pub const X_REQUEST: usize = 16;
    /// Type II: X response — one 32-byte vector block + header.
    pub const X_RESPONSE: usize = 40;
    /// Type III: Y partial — row index + f64 value + header.
    pub const Y_PARTIAL: usize = 16;
    /// DRAM row transfer between bank and PE queue (local, no packet header).
    pub const DRAM_ROW: usize = 256;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_carries_a_block() {
        // 4 × f64 = 32 data bytes plus an 8-byte header.
        assert_eq!(size::X_RESPONSE, 32 + 8);
    }

    #[test]
    fn requester_is_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(Requester::BankGroup(3));
        s.insert(Requester::Vault(3));
        assert_eq!(s.len(), 2);
    }
}
