//! Hardware configuration (paper Section V-A, "Hardware Configuration").

use spacea_mapping::MachineShape;
use spacea_sim::cam::CamConfig;
use spacea_sim::dram::DramTiming;
use spacea_sim::fault::{FaultPlan, WatchdogConfig};
use spacea_sim::Cycle;

/// Full hardware configuration of a SpaceA machine.
///
/// Defaults follow the paper's HMC-like configuration; [`HwConfig::scaled`]
/// shrinks the cube count (not the per-cube structure) so that cycle-level
/// simulation of the scaled Table I suite stays laptop-feasible, and
/// [`HwConfig::tiny`] is a miniature for unit tests.
#[derive(Debug, Clone, PartialEq)]
pub struct HwConfig {
    /// Cube/vault/layer/bank structure (shared with the mapping crate).
    pub shape: MachineShape,
    /// DRAM bank timing.
    pub timing: DramTiming,
    /// L1 CAM geometry (per bank group).
    pub l1_cam: CamConfig,
    /// L2 CAM geometry (per vault controller).
    pub l2_cam: CamConfig,
    /// L1 load-queue entries (per bank group; paper default 512).
    pub l1_ldq_entries: usize,
    /// L2 load-queue entries (per vault; paper default 8192).
    pub l2_ldq_entries: usize,
    /// PE queue capacity in DRAM rows (16 Kb scratchpad = 8 rows of 2 Kb).
    pub pe_queue_rows: usize,
    /// Update-buffer capacity in DRAM rows (Accumulation-PE reuse of the PE
    /// queue SRAM).
    pub update_buffer_rows: usize,
    /// TSV transfer latency in cycles (default 2; swept 1–16 in Figure 9).
    pub tsv_latency: Cycle,
    /// TSV bandwidth per vault slice, bytes/cycle (1024 TSVs @ 2 Gbps over
    /// 16 vaults = 16 B/cycle).
    pub tsv_bytes_per_cycle: usize,
    /// Intra-cube NoC per-hop latency in cycles.
    pub noc_hop_latency: Cycle,
    /// Intra-cube NoC link bandwidth, bytes/cycle.
    pub noc_bytes_per_cycle: usize,
    /// Inter-cube SerDes per-hop latency in cycles.
    pub serdes_hop_latency: Cycle,
    /// Inter-cube SerDes link bandwidth, bytes/cycle.
    pub serdes_bytes_per_cycle: usize,
    /// Cycles per non-zero scan step in the Product-PE control unit (the
    /// paper's `L_p`).
    pub l_p: Cycle,
    /// L1 CAM search latency, cycles.
    pub l1_cam_latency: Cycle,
    /// L2 CAM search latency, cycles.
    pub l2_cam_latency: Cycle,
    /// FPU latency for one double-precision multiply-accumulate \[23\].
    pub fpu_latency: Cycle,
    /// Whether the load queues deduplicate outstanding requests (the
    /// Section III-B design; disable only for the ablation study).
    pub ldq_dedup: bool,
    /// Deterministic fault-injection plan (empty by default; used to prove
    /// the robustness layer fails loudly).
    pub faults: FaultPlan,
    /// Forward-progress watchdog budgets for the run loop.
    pub watchdog: WatchdogConfig,
}

impl HwConfig {
    /// The paper's default 16-cube machine.
    pub fn paper() -> Self {
        Self::with_shape(MachineShape::paper())
    }

    /// A 2-cube machine with the paper's per-cube structure (see DESIGN.md
    /// §4 on scaling).
    pub fn scaled() -> Self {
        Self::with_shape(MachineShape::scaled())
    }

    /// A miniature machine for unit tests: 1 cube × 4 vaults × 2 matrix
    /// layers × 2 banks.
    pub fn tiny() -> Self {
        Self::with_shape(MachineShape::tiny())
    }

    /// An HBM-like realization (paper Section VII, "HMC vs. HBM").
    ///
    /// HBM groups banks horizontally into channels instead of vertically
    /// into vaults, but both give low-latency TSVs among the banks sharing a
    /// channel. Under an equivalent configuration — same bank count, same
    /// per-bank interface, same per-channel TSV bandwidth — the paper argues
    /// SpaceA behaves the same; this preset encodes that equivalence on the
    /// 2-stack scale (4 stacks × 8 channels × 7 bank pairs = 448 PEs, the
    /// same as [`HwConfig::scaled`]) with HBM's pseudo-channel timing: a
    /// slightly longer TSV transfer and a wider per-channel interface.
    pub fn hbm_like() -> Self {
        let mut cfg = Self::with_shape(MachineShape {
            cubes: 4,           // stacks
            vaults_per_cube: 8, // channels per stack
            product_bgs_per_vault: 7,
            banks_per_bg: 2,
        });
        cfg.tsv_latency = 3; // longer channel wiring
        cfg.tsv_bytes_per_cycle = 32; // 256 GB/s per stack over 8 channels
        cfg
    }

    /// Every named configuration variant, in the order [`HwConfig::by_name`]
    /// accepts them. Sweep grids use these names as their hardware axis.
    pub fn variant_names() -> &'static [&'static str] {
        &["scaled", "paper", "tiny", "hbm"]
    }

    /// Looks up a named configuration variant (`"scaled"`, `"paper"`,
    /// `"tiny"`, `"hbm"`), the machine axis of a sweep grid.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "scaled" => Some(Self::scaled()),
            "paper" => Some(Self::paper()),
            "tiny" => Some(Self::tiny()),
            "hbm" => Some(Self::hbm_like()),
            _ => None,
        }
    }

    /// Axis constructor: this configuration with a different cube count
    /// (per-cube structure unchanged) — the Figure 10 scalability axis.
    pub fn with_cubes(mut self, cubes: usize) -> Self {
        self.shape.cubes = cubes.max(1);
        self
    }

    /// Axis constructor: this configuration with a different L1 CAM set
    /// count (the Figure 7(a) capacity axis).
    pub fn with_l1_cam_sets(mut self, sets: usize) -> Self {
        self.l1_cam.sets = sets.max(1);
        self
    }

    /// Axis constructor: this configuration with a different L2 CAM set
    /// count (the Figure 7(c) capacity axis).
    pub fn with_l2_cam_sets(mut self, sets: usize) -> Self {
        self.l2_cam.sets = sets.max(1);
        self
    }

    /// The paper's component parameters on an arbitrary machine shape.
    pub fn with_shape(shape: MachineShape) -> Self {
        HwConfig {
            shape,
            timing: DramTiming::default(),
            l1_cam: CamConfig::l1_default(),
            l2_cam: CamConfig::l2_default(),
            l1_ldq_entries: 512,
            l2_ldq_entries: 8192,
            pe_queue_rows: 8,
            update_buffer_rows: 8,
            tsv_latency: 2,
            tsv_bytes_per_cycle: 16,
            noc_hop_latency: 3,
            noc_bytes_per_cycle: 16,
            serdes_hop_latency: 12,
            serdes_bytes_per_cycle: 128,
            l_p: 1,
            l1_cam_latency: 2,
            l2_cam_latency: 4,
            fpu_latency: 4,
            ldq_dedup: true,
            faults: FaultPlan::default(),
            watchdog: WatchdogConfig::default(),
        }
    }

    /// Non-zeros that fit in one matrix DRAM row: a 4-byte row-index header,
    /// then (4-byte column index, 8-byte value) pairs (Section III-B).
    pub fn nnz_per_dram_row(&self) -> usize {
        (self.timing.row_bytes - 4) / 12
    }

    /// Register-file entries: "the same size as the number of non-zero
    /// elements stored in a PE queue".
    pub fn register_file_entries(&self) -> usize {
        self.pe_queue_rows * self.nnz_per_dram_row()
    }

    /// Output-vector elements per DRAM row in a vector bank.
    pub fn y_per_dram_row(&self) -> usize {
        self.timing.row_bytes / 8
    }

    /// Total vector banks (one Accumulation-PE each): the bottom DRAM layer.
    pub fn vector_banks(&self) -> usize {
        self.shape.cubes * self.shape.vaults_per_cube * self.shape.banks_per_bg
    }

    /// Mesh dimensions for `n` nodes: the most-square factorization.
    pub fn mesh_dims(n: usize) -> (usize, usize) {
        assert!(n > 0, "mesh needs at least one node");
        let mut best = (1, n);
        let mut w = 1;
        while w * w <= n {
            if n.is_multiple_of(w) {
                best = (n / w, w);
            }
            w += 1;
        }
        best
    }

    /// Basic sanity checks on the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.shape.product_pes() == 0 {
            return Err("machine has no product PEs".into());
        }
        if self.pe_queue_rows == 0 || self.update_buffer_rows == 0 {
            return Err("PE queue and update buffer need at least one row".into());
        }
        if self.nnz_per_dram_row() == 0 {
            return Err("DRAM row too small to hold a non-zero".into());
        }
        if self.l_p == 0 {
            return Err("L_p must be at least one cycle".into());
        }
        if self.l1_cam.way_bytes != 32 {
            return Err(format!(
                "the block-based data path assumes 32-byte (4-element) CAM ways, got {}",
                self.l1_cam.way_bytes
            ));
        }
        if let Some((vault, _)) = self.faults.stall_vault {
            if vault >= self.shape.vaults() {
                return Err(format!(
                    "fault plan stalls vault {vault}, but the machine has only {} vaults",
                    self.shape.vaults()
                ));
            }
        }
        Ok(())
    }
}

impl Default for HwConfig {
    /// Defaults to the laptop-feasible [`HwConfig::scaled`] machine.
    fn default() -> Self {
        Self::scaled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_v() {
        let c = HwConfig::paper();
        assert_eq!(c.shape.product_pes(), 3584);
        assert_eq!(c.l1_cam.capacity_bytes(), 4096);
        assert_eq!(c.l2_cam.capacity_bytes(), 256 * 1024);
        assert_eq!(c.l1_ldq_entries, 512);
        assert_eq!(c.l2_ldq_entries, 8192);
        assert_eq!(c.pe_queue_rows, 8);
        assert_eq!(c.tsv_latency, 2);
    }

    #[test]
    fn nnz_packing_matches_row_size() {
        let c = HwConfig::tiny();
        // (256 - 4) / 12 = 21 non-zeros per DRAM row.
        assert_eq!(c.nnz_per_dram_row(), 21);
        assert_eq!(c.register_file_entries(), 8 * 21);
        assert_eq!(c.y_per_dram_row(), 32);
    }

    #[test]
    fn vector_bank_count() {
        let c = HwConfig::tiny();
        // 1 cube × 4 vaults × 2 banks on the vector layer.
        assert_eq!(c.vector_banks(), 8);
    }

    #[test]
    fn mesh_dims_square_factorizations() {
        assert_eq!(HwConfig::mesh_dims(16), (4, 4));
        assert_eq!(HwConfig::mesh_dims(32), (8, 4));
        assert_eq!(HwConfig::mesh_dims(64), (8, 8));
        assert_eq!(HwConfig::mesh_dims(1), (1, 1));
        assert_eq!(HwConfig::mesh_dims(7), (7, 1));
    }

    #[test]
    fn hbm_like_matches_scaled_pe_count() {
        let hbm = HwConfig::hbm_like();
        assert_eq!(hbm.shape.product_pes(), HwConfig::scaled().shape.product_pes());
        // Same aggregate channel bandwidth per stack: 8 ch x 32 B/cy = 16
        // vaults x 16 B/cy.
        assert_eq!(
            hbm.shape.vaults_per_cube * hbm.tsv_bytes_per_cycle,
            16 * HwConfig::scaled().tsv_bytes_per_cycle
        );
    }

    #[test]
    fn named_variants_resolve() {
        for name in HwConfig::variant_names() {
            assert!(HwConfig::by_name(name).is_some(), "variant {name} must resolve");
        }
        assert_eq!(HwConfig::by_name("scaled"), Some(HwConfig::scaled()));
        assert_eq!(HwConfig::by_name("hbm"), Some(HwConfig::hbm_like()));
        assert!(HwConfig::by_name("warp-drive").is_none());
    }

    #[test]
    fn axis_constructors_change_one_knob() {
        let base = HwConfig::tiny();
        let c = base.clone().with_cubes(3);
        assert_eq!(c.shape.cubes, 3);
        assert_eq!(c.shape.vaults_per_cube, base.shape.vaults_per_cube);
        let c = base.clone().with_l1_cam_sets(64).with_l2_cam_sets(128);
        assert_eq!((c.l1_cam.sets, c.l2_cam.sets), (64, 128));
        assert_eq!(c.l1_cam.ways, base.l1_cam.ways);
        // Degenerate values clamp instead of producing an unusable machine.
        assert_eq!(base.clone().with_cubes(0).shape.cubes, 1);
        assert_eq!(base.with_l1_cam_sets(0).l1_cam.sets, 1);
    }

    #[test]
    fn validate_catches_bad_configs() {
        let mut c = HwConfig::tiny();
        assert!(c.validate().is_ok());
        c.l_p = 0;
        assert!(c.validate().is_err());
        let mut c2 = HwConfig::tiny();
        c2.pe_queue_rows = 0;
        assert!(c2.validate().is_err());
        let mut c3 = HwConfig::tiny();
        c3.l1_cam.way_bytes = 16;
        assert!(c3.validate().is_err());
        let mut c4 = HwConfig::tiny();
        c4.faults.stall_vault = Some((99, 0));
        assert!(c4.validate().is_err(), "stalling a non-existent vault must be rejected");
        c4.faults.stall_vault = Some((0, 0));
        assert!(c4.validate().is_ok());
    }
}
