//! The SpaceA architecture model (paper Section III), built on the
//! event-driven substrate of `spacea-sim`.
//!
//! A [`Machine`] is a set of 3D-stacked memory cubes connected in a memory
//! network. Every memory bank has a processing element: banks on the matrix
//! layers run **Product-PEs** that stream non-zeros out of their local bank
//! and compute partial dot products; banks on the vector layer run
//! **Accumulation-PEs** that serve input-vector blocks and accumulate partial
//! results into the output vector. Bank groups share an L1 CAM + load queue;
//! each vault controller adds an L2 CAM + load queue on the base die; vaults
//! communicate over TSVs (uniform latency) and a 2D-mesh NoC, cubes over a
//! SerDes mesh.
//!
//! The simulation is validated the same way the paper validates its
//! simulator: "the correctness of the event triggering mechanism is validated
//! by the values of the output vector" — every run checks the simulated `y`
//! against the software SpMV oracle.
//!
//! # Example
//!
//! ```
//! use spacea_arch::{HwConfig, Machine, RunSpec};
//! use spacea_mapping::{LocalityMapping, MappingStrategy};
//! use spacea_matrix::gen::{banded, BandedConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = HwConfig::tiny();
//! let a = banded(&BandedConfig { n: 128, ..Default::default() });
//! let x = vec![1.0; a.cols()];
//! let mapping = LocalityMapping::default().map(&a, &cfg.shape);
//! let report = Machine::new(cfg).run(RunSpec::spmv(&a, &x, &mapping))?.into_report();
//! assert!(report.validated);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod accum;
mod config;
mod layout;
mod machine;
mod packet;
mod pe;
mod report;
pub mod trace;

pub use config::HwConfig;
pub use layout::{DataLayout, SlotId};
pub use machine::{Machine, ObserveConfig, RunInput, RunOutput, RunSpec, SampleFlush, SimError};
pub use report::{SimReport, SpmmReport};
pub use spacea_sim::fault::{
    FaultPlan, OccupancyHistory, OccupancySample, StallDiagnosis, VaultOccupancy, WatchdogConfig,
};
pub use trace::{timeline_slices, TraceEvent, TraceRecord};
