//! The SpaceA machine and its event-driven SpMV execution.
//!
//! [`Machine::run`] — the single entrypoint, driven by a [`RunSpec`] —
//! builds the full component hierarchy (banks, PEs, CAMs, load queues,
//! TSVs, NoC meshes), distributes the matrix according to the mapping and
//! the vectors block-cyclically over the vector banks, then drives the
//! discrete-event loop of Section III until every non-zero is processed and
//! every partial result is accumulated. The run is validated against the
//! software SpMV oracle, exactly as the paper validates its simulator.
//!
//! The X-request data path (paper Figure 3, one cube shown):
//!
//! ```text
//!  matrix layer 1..7                          vector layer 0
//!  ┌───────────────────────┐                 ┌──────────────────────┐
//!  │ bank ─▶ PE queue ─▶ RF │                │ vector bank          │
//!  │          │  miss       │                │   ▲ read 32 B block  │
//!  │      L1 CAM ─ L1 LDQ   │                │ L1 CAM (Accum-PE)    │
//!  └──────────┬─────────────┘                └──────────▲───────────┘
//!             │ TSV (bus, 16 B/cy)                      │ TSV
//!  ┌──────────▼──────────────────────────────────────────┴──┐
//!  │ vault controller: L2 CAM ─ L2 LDQ ─ NoC router         │ base die
//!  └──────────▲──────────────────────────────────────────▲──┘
//!             │ 4x4 vault mesh (X-Y routing)              │
//!             └───────────── SerDes cube mesh ────────────┘
//! ```
//!
//! Y partials flow the same way in reverse: PE → TSV → home vault →
//! TSV → Accumulation-PE update buffer.

use crate::accum::{UpdateBuffer, UpdateOutcome};
use crate::config::HwConfig;
use crate::layout::{DataLayout, SlotId};
use crate::packet::{size, Requester};
use crate::pe::{pack_rows, PeEntry, ProductPe};
use crate::report::{SimReport, SpmmReport};
use crate::trace::{TraceEvent, TraceRecord};
use spacea_mapping::Mapping;
use spacea_matrix::Csr;
use spacea_model::ActivitySummary;
use spacea_obs::{MetricKey, Sampler, SamplerConfig, Timeline};
use spacea_sim::cam::Cam;
use spacea_sim::dram::{AccessKind, DramBank};
use spacea_sim::engine::EventQueue;
use spacea_sim::fault::{OccupancyHistory, OccupancySample, StallDiagnosis, VaultOccupancy};
use spacea_sim::ldq::{LdqPush, LoadQueue};
use spacea_sim::link::Link;
use spacea_sim::noc::MeshNoc;
use spacea_sim::stats::{CamCounters, SramCounters};
use spacea_sim::trace::TraceLog;
use spacea_sim::Cycle;
use std::cell::Cell;
use std::error::Error;
use std::fmt;

/// Errors from building or running a simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The hardware configuration failed validation.
    BadConfig(String),
    /// Vector length does not match the matrix.
    DimensionMismatch {
        /// Expected length (matrix columns).
        expected: usize,
        /// Provided length.
        actual: usize,
    },
    /// A fused multi-vector run was given no input vectors.
    EmptyBatch,
    /// The mapping was built for a different PE count or matrix.
    MappingMismatch(String),
    /// The simulated output disagreed with the software oracle.
    ValidationFailed {
        /// First mismatching element index.
        index: usize,
        /// Simulated value.
        simulated: f64,
        /// Oracle value.
        expected: f64,
    },
    /// The event queue drained while PEs/vaults still held in-flight work.
    Deadlock(StallDiagnosis),
    /// No retirement happened within the watchdog's stall window.
    NoProgress {
        /// The configured stall window, cycles.
        window: Cycle,
        /// Machine state at abort.
        diagnosis: StallDiagnosis,
    },
    /// Simulated time passed the watchdog's total cycle budget.
    CycleBudgetExceeded {
        /// The configured budget, cycles.
        budget: Cycle,
        /// Machine state at abort.
        diagnosis: StallDiagnosis,
    },
    /// The engine's counter invariant was violated (events lost or
    /// double-delivered — a simulator bug, never data-dependent).
    CounterInvariant(String),
}

impl SimError {
    /// True for hang-class failures (deadlock, livelock, cycle budget).
    /// Hangs are deterministic — retrying one burns the same budget again —
    /// so supervisors report them as timeouts instead of retrying.
    pub fn is_hang(&self) -> bool {
        matches!(
            self,
            SimError::Deadlock(_)
                | SimError::NoProgress { .. }
                | SimError::CycleBudgetExceeded { .. }
        )
    }

    /// The stall diagnosis carried by hang-class failures.
    pub fn diagnosis(&self) -> Option<&StallDiagnosis> {
        match self {
            SimError::Deadlock(d) => Some(d),
            SimError::NoProgress { diagnosis, .. }
            | SimError::CycleBudgetExceeded { diagnosis, .. } => Some(diagnosis),
            _ => None,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BadConfig(msg) => write!(f, "invalid hardware configuration: {msg}"),
            SimError::DimensionMismatch { expected, actual } => {
                write!(f, "input vector length {actual} does not match {expected} columns")
            }
            SimError::EmptyBatch => {
                write!(f, "a fused multi-vector run needs at least one input vector")
            }
            SimError::MappingMismatch(msg) => write!(f, "mapping mismatch: {msg}"),
            SimError::ValidationFailed { index, simulated, expected } => write!(
                f,
                "output validation failed at element {index}: simulated {simulated}, expected {expected}"
            ),
            SimError::Deadlock(d) => {
                write!(f, "deadlock: event queue drained with work outstanding — {d}")
            }
            SimError::NoProgress { window, diagnosis } => {
                write!(f, "livelock: no retirement in {window} cycles — {diagnosis}")
            }
            SimError::CycleBudgetExceeded { budget, diagnosis } => {
                write!(f, "cycle budget of {budget} exceeded — {diagnosis}")
            }
            SimError::CounterInvariant(msg) => write!(f, "{msg}"),
        }
    }
}

impl Error for SimError {}

/// A configured SpaceA machine, ready to run SpMV workloads.
#[derive(Debug, Clone)]
pub struct Machine {
    cfg: HwConfig,
}

impl Machine {
    /// Creates a machine with the given configuration.
    pub fn new(cfg: HwConfig) -> Self {
        Machine { cfg }
    }

    /// The machine's configuration.
    pub fn config(&self) -> &HwConfig {
        &self.cfg
    }

    /// Validates configuration, dimensions, and mapping before a run.
    fn preflight(&self, a: &Csr, xs: &[&[f64]], mapping: &Mapping) -> Result<(), SimError> {
        self.cfg.validate().map_err(SimError::BadConfig)?;
        if xs.is_empty() {
            return Err(SimError::EmptyBatch);
        }
        for x in xs {
            if x.len() != a.cols() {
                return Err(SimError::DimensionMismatch { expected: a.cols(), actual: x.len() });
            }
        }
        if mapping.assignment.num_pes() != self.cfg.shape.product_pes() {
            return Err(SimError::MappingMismatch(format!(
                "mapping has {} PEs, machine has {}",
                mapping.assignment.num_pes(),
                self.cfg.shape.product_pes()
            )));
        }
        if mapping.assignment.total_rows() != a.rows() {
            return Err(SimError::MappingMismatch(format!(
                "mapping covers {} rows, matrix has {}",
                mapping.assignment.total_rows(),
                a.rows()
            )));
        }
        Ok(())
    }

    /// Runs the simulation described by `spec` — the single entrypoint for
    /// every workload shape: plain SpMV, fused SpMM, traced, observed, and
    /// incrementally flushed runs are all one [`RunSpec`] with different
    /// options.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on configuration, dimension or mapping mismatch
    /// (plus [`SimError::EmptyBatch`] for an empty batch input); if the
    /// simulated output fails oracle validation (which would indicate a
    /// simulator bug, never a data-dependent condition); or with a
    /// hang-class error carrying a [`StallDiagnosis`] when the
    /// forward-progress watchdog aborts the run (deadlock, stall window, or
    /// cycle budget — see [`spacea_sim::fault::WatchdogConfig`]).
    pub fn run<'a>(&'a self, spec: RunSpec<'a>) -> Result<RunOutput, SimError> {
        let RunSpec { a, input, mapping, trace_capacity, observe, flush } = spec;
        let single = matches!(input, RunInput::Single(_));
        let xs: Vec<&[f64]> = match input {
            RunInput::Single(x) => vec![x],
            RunInput::Batch(xs) => xs.iter().map(Vec::as_slice).collect(),
        };
        self.preflight(a, &xs, mapping)?;
        let mut sim = Sim::build(&self.cfg, a, xs, mapping);
        // Observed runs keep a bounded trace too (duration slices derive
        // from it); an explicit `traced` capacity takes precedence.
        if let Some(cap) = trace_capacity.or(observe.map(|o| o.trace_capacity)) {
            sim.trace = TraceLog::new(cap);
        }
        if let Some(obs) = observe {
            sim.arm_sampler(SamplerConfig { every: obs.every, capacity: obs.capacity });
            sim.flush_cb = flush;
        }
        sim.run()?;
        sim.flush_cb = None;
        let timeline = if observe.is_some() {
            // Final snapshot at the end cycle so short runs still get a
            // series. The sampler was armed above; an empty timeline is the
            // graceful degradation if that ever changes.
            let end = sim.end_time;
            sim.obs_cycle = end;
            Some(match sim.sampler.take() {
                Some(mut sampler) => {
                    sampler.sample_now(end, &sim);
                    sampler.into_timeline()
                }
                None => Timeline::default(),
            })
        } else {
            None
        };
        let trace = std::mem::take(&mut sim.trace);
        let timeline = timeline.map(|mut tl| {
            tl.slices = crate::trace::timeline_slices(trace.records());
            tl
        });
        let (mut report, outputs) = sim.finish(a)?;
        if single {
            report.output = outputs[0].clone();
        }
        Ok(RunOutput { report, outputs, trace: trace_capacity.map(|_| trace), timeline })
    }
}

/// The input side of a [`RunSpec`]: one vector (SpMV) or a fused batch
/// (SpMM).
#[derive(Debug, Clone, Copy)]
pub enum RunInput<'a> {
    /// Single-vector `y = A·x`.
    Single(&'a [f64]),
    /// Fused multi-vector pass `Y = A · [x_0 … x_{k-1}]`: the matrix is
    /// streamed through the Product-PEs exactly once, each X response
    /// carries the block of every vector in the batch, and each Y packet
    /// carries one partial per vector — so row-buffer activations, CAM
    /// lookups and packet headers are paid once for the whole batch instead
    /// of once per vector.
    Batch(&'a [Vec<f64>]),
}

/// One completed sampler window, handed to a [`RunSpec::flushing`] hook:
/// the sample cycle plus the value every gauge recorded there, in gauge
/// registration order.
///
/// Each window boundary records exactly one value per gauge, so a sink that
/// appends these ticks can reconstruct every series exactly by replaying
/// them — O(gauges) per window, instead of rewriting a whole artifact.
#[derive(Debug)]
pub struct SampleFlush<'t> {
    /// The cycle this window's samples were recorded at.
    pub cycle: Cycle,
    /// `(gauge key, recorded value)` pairs in registration order.
    pub samples: &'t [(&'t MetricKey, f64)],
}

/// What one simulation should compute and record. [`Machine::run`] is the
/// only entrypoint; this spec composes the input shape (single vector or
/// fused batch) with tracing, observation, and flush hooks as options — the
/// next recording feature adds a field here, not another `run_*` method.
///
/// Build with [`RunSpec::spmv`] or [`RunSpec::spmm`], then chain
/// [`RunSpec::traced`], [`RunSpec::observed`], [`RunSpec::flushing`].
pub struct RunSpec<'a> {
    a: &'a Csr,
    input: RunInput<'a>,
    mapping: &'a Mapping,
    trace_capacity: Option<usize>,
    observe: Option<ObserveConfig>,
    flush: Option<&'a mut dyn FnMut(&SampleFlush<'_>)>,
}

impl<'a> RunSpec<'a> {
    /// A plain single-vector run `y = A·x` under `mapping`.
    pub fn spmv(a: &'a Csr, x: &'a [f64], mapping: &'a Mapping) -> Self {
        RunSpec::with_input(a, RunInput::Single(x), mapping)
    }

    /// A fused multi-vector run `Y = A · [x_0 … x_{k-1}]` under `mapping`.
    ///
    /// Every output vector is bitwise-identical to what the single-vector
    /// run returns for that vector alone (row dot products are reduced in
    /// canonical CSR entry order, independent of batch composition), which
    /// is what lets a batching service fuse concurrent requests safely.
    pub fn spmm(a: &'a Csr, xs: &'a [Vec<f64>], mapping: &'a Mapping) -> Self {
        RunSpec::with_input(a, RunInput::Batch(xs), mapping)
    }

    /// A run over an explicit [`RunInput`].
    pub fn with_input(a: &'a Csr, input: RunInput<'a>, mapping: &'a Mapping) -> Self {
        RunSpec { a, input, mapping, trace_capacity: None, observe: None, flush: None }
    }

    /// Record the first `capacity` machine events (the paper's "detailed
    /// event trace", bounded so memory stays predictable) into
    /// [`RunOutput::trace`].
    pub fn traced(mut self, capacity: usize) -> Self {
        self.trace_capacity = Some(capacity);
        self
    }

    /// Sample per-component gauges (queue occupancy, CAM and row-buffer hit
    /// rates, TSV/NoC traffic) on the configured cadence into
    /// [`RunOutput::timeline`], with duration slices derived from the
    /// bounded event trace. The [`Timeline`] exports to CSV or
    /// Perfetto-loadable Chrome trace JSON (see `spacea-obs`).
    ///
    /// Observation is pure reading: an observed run retires in exactly the
    /// same cycles as a plain one.
    pub fn observed(mut self, obs: ObserveConfig) -> Self {
        self.observe = Some(obs);
        self
    }

    /// Invoke `flush` each time a sampler window completes (meaningful only
    /// together with [`RunSpec::observed`]; ignored otherwise). Callers
    /// persist the ticks (chunk appends + tmp-file/rename index) so a run
    /// killed mid-flight leaves a valid truncated timeline artifact instead
    /// of nothing.
    ///
    /// Flushing is a pure read of the sampler state: simulated timing and
    /// the final timeline are identical with or without a hook.
    pub fn flushing(mut self, flush: &'a mut dyn FnMut(&SampleFlush<'_>)) -> Self {
        self.flush = Some(flush);
        self
    }
}

/// Everything one [`Machine::run`] produced.
#[derive(Debug)]
pub struct RunOutput {
    /// Timing, traffic, and activity accounting. For single-vector runs
    /// `report.output` carries the result vector (mirroring `outputs[0]`).
    pub report: SimReport,
    /// One oracle-validated output vector per input vector (length 1 for
    /// single-vector runs).
    pub outputs: Vec<Vec<f64>>,
    /// The bounded event trace, present iff [`RunSpec::traced`] was set.
    pub trace: Option<TraceLog<TraceRecord>>,
    /// Gauge series and duration slices, present iff [`RunSpec::observed`]
    /// was set.
    pub timeline: Option<Timeline>,
}

impl RunOutput {
    /// The batch width `k` (1 for single-vector runs).
    pub fn batch(&self) -> usize {
        self.outputs.len()
    }

    /// Just the report. For single-vector runs its `output` field already
    /// carries the result vector.
    pub fn into_report(self) -> SimReport {
        self.report
    }

    /// Repackages a fused multi-vector run as a [`SpmmReport`].
    pub fn into_spmm(self) -> SpmmReport {
        SpmmReport { report: self.report, outputs: self.outputs }
    }
}

/// What an observed run ([`RunSpec::observed`]) records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObserveConfig {
    /// Sample every gauge each N cycles (clamped to ≥ 1).
    pub every: Cycle,
    /// Maximum windows kept per gauge series; beyond that the series
    /// downsamples, so memory stays flat however long the run is.
    pub capacity: usize,
    /// Bounded event-trace prefix length the duration slices derive from.
    pub trace_capacity: usize,
}

impl Default for ObserveConfig {
    fn default() -> Self {
        ObserveConfig { every: 4096, capacity: 256, trace_capacity: 65_536 }
    }
}

/// Simulation events. Every event carries its destination component id.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Product-PE control-unit scan step.
    PeStep { pe: u32 },
    /// A DRAM row arrived in the PE queue.
    RowLoaded { pe: u32, row_id: u32 },
    /// Type I packet at a vault controller.
    VaultXReq { vault: u32, block: u64, from: Requester },
    /// Type II packet at a vault controller.
    VaultXResp { vault: u32, block: u64 },
    /// X request reached the owning vector bank.
    BankXReq { bank: u32, block: u64 },
    /// X response reached a product bank group: fill L1, wake waiters.
    L1Fill { bg: u32, block: u64 },
    /// Type III packet at the vault owning `Y_row`. The per-vector partial
    /// values travel out-of-band in `Sim::y_stash` (events stay `Copy`).
    YAtVault { vault: u32, row: u32 },
    /// Y partial reached the owning vector bank's Accumulation-PE.
    YAtBank { bank: u32, row: u32 },
}

/// Converts an internal event into its public trace representation.
fn trace_event(ev: &Ev) -> TraceEvent {
    match *ev {
        Ev::PeStep { pe } => TraceEvent::PeStep { pe },
        Ev::RowLoaded { pe, row_id } => TraceEvent::RowLoaded { pe, row_id },
        Ev::VaultXReq { vault, block, .. } => TraceEvent::XRequestAtVault { vault, block },
        Ev::VaultXResp { vault, block } => TraceEvent::XResponseAtVault { vault, block },
        Ev::BankXReq { bank, block } => TraceEvent::XRequestAtBank { bank, block },
        Ev::L1Fill { bg, block } => TraceEvent::L1Fill { bg, block },
        Ev::YAtVault { vault, row } => TraceEvent::YAtVault { vault, row },
        Ev::YAtBank { bank, row } => TraceEvent::YAtBank { bank, row },
    }
}

/// A PE-queue entry parked in an L1 load queue.
#[derive(Debug, Clone, Copy)]
struct PeWaiter {
    pe: u32,
    entry: PeEntry,
}

struct Sim<'a> {
    cfg: &'a HwConfig,
    layout: DataLayout,
    a: &'a Csr,
    /// The batch of input vectors (`k = xs.len()`, ≥ 1 by preflight). A
    /// single-vector SpMV is the `k = 1` special case of the same machine.
    xs: Vec<&'a [f64]>,
    q: EventQueue<Ev>,

    pes: Vec<ProductPe>,
    pe_slots: Vec<SlotId>,
    matrix_banks: Vec<DramBank>,
    vector_banks: Vec<DramBank>,
    // The CAMs model presence/timing only: X values are read directly from
    // `xs` where needed, so the cached payload is `()`.
    prod_l1: Vec<Cam<()>>,
    vec_l1: Vec<Cam<()>>,
    l1_ldq: Vec<LoadQueue<PeWaiter>>,
    l2_cam: Vec<Cam<()>>,
    l2_ldq: Vec<LoadQueue<Requester>>,
    tsv: Vec<Link>,
    nocs: Vec<MeshNoc>,
    serdes: Option<MeshNoc>,
    update_buf: Vec<UpdateBuffer>,
    accum_busy: Vec<Cycle>,

    /// One output vector per input vector.
    ys: Vec<Vec<f64>>,
    /// Completed per-vector row partials in flight toward their home bank:
    /// a flat `rows × k` arena indexed `row·k + v` (events stay `Copy`; the
    /// values travel out-of-band here). Each row flushes exactly once — a
    /// whole row belongs to one PE.
    y_stash: Vec<f64>,
    /// Which rows currently hold a stashed partial; a clear flag at
    /// delivery means the packet was lost to an injected fault.
    y_ready: Vec<bool>,
    entries_left: u64,
    y_left: u64,
    end_time: Cycle,

    // Fault-injection ordinals: routed cross-vault NoC packets and
    // accumulator updates seen so far.
    noc_packets: u64,
    accum_updates: u64,

    rf: SramCounters,
    queue_sram: SramCounters,
    fpu_ops: u64,
    trace: TraceLog<TraceRecord>,

    // Always-on per-vault occupancy history feeding
    // `StallDiagnosis::history`: a flat ring of sample rounds
    // (`OCC_HISTORY` rounds × vaults, slot `(round % OCC_HISTORY)·vaults +
    // vault`), plus the optional full gauge sampler armed by observed runs.
    // Both are pure readers: they must never change what the machine does,
    // only record it.
    occ_hist: Vec<OccupancySample>,
    occ_rounds: usize,
    occ_every: Cycle,
    occ_next: Cycle,
    /// The cycle observation probes treat as "now": set to the cycle being
    /// drained before each sampler tick (the event clock itself trails by
    /// one cycle at batch boundaries).
    obs_cycle: Cycle,
    sampler: Option<Sampler<Sim<'a>>>,
    /// Invoked with the just-completed window's samples each time a sampler
    /// window closes (incremental timeline persistence). Pure reader: never
    /// touches simulation state.
    flush_cb: Option<&'a mut dyn FnMut(&SampleFlush<'_>)>,
}

impl<'a> Sim<'a> {
    fn build(cfg: &'a HwConfig, a: &'a Csr, xs: Vec<&'a [f64]>, mapping: &Mapping) -> Self {
        debug_assert_eq!(
            cfg.l1_cam.way_bytes, 32,
            "preflight validation enforces the 32-byte (4-element) CAM way assumption"
        );
        let layout = DataLayout::new(cfg);
        let num_pes = cfg.shape.product_pes();
        let nnz_per_row = cfg.nnz_per_dram_row();

        let mut pes = Vec::with_capacity(num_pes);
        let mut pe_slots = Vec::with_capacity(num_pes);
        let mut entries_left = 0u64;
        let mut y_left = 0u64;
        for slot_ix in 0..num_pes {
            let logical = mapping.placement.logical_at_slot(slot_ix) as usize;
            let rows = mapping.assignment.rows_of(logical);
            let packed = pack_rows(a, rows, nnz_per_row);
            let pe = ProductPe::new(packed);
            entries_left += pe.total_nnz() as u64;
            y_left += rows.iter().filter(|&&r| a.row_nnz(r as usize) > 0).count() as u64;
            pes.push(pe);
            pe_slots.push(layout.slot_from_linear(slot_ix));
        }

        let vaults = cfg.shape.vaults();
        let (nw, nh) = HwConfig::mesh_dims(cfg.shape.vaults_per_cube);
        let nocs = (0..cfg.shape.cubes)
            .map(|_| MeshNoc::new(nw, nh, cfg.noc_hop_latency, cfg.noc_bytes_per_cycle))
            .collect();
        let serdes = (cfg.shape.cubes > 1).then(|| {
            let (cw, ch) = HwConfig::mesh_dims(cfg.shape.cubes);
            MeshNoc::new(cw, ch, cfg.serdes_hop_latency, cfg.serdes_bytes_per_cycle)
        });

        let k = xs.len();
        let ys = vec![vec![0.0; a.rows()]; k];
        Sim {
            cfg,
            layout,
            a,
            xs,
            q: EventQueue::new(),
            pes,
            pe_slots,
            matrix_banks: (0..num_pes).map(|_| DramBank::new(cfg.timing)).collect(),
            vector_banks: (0..cfg.vector_banks()).map(|_| DramBank::new(cfg.timing)).collect(),
            prod_l1: (0..cfg.shape.product_bank_groups()).map(|_| Cam::new(cfg.l1_cam)).collect(),
            vec_l1: (0..vaults).map(|_| Cam::new(cfg.l1_cam)).collect(),
            l1_ldq: (0..cfg.shape.product_bank_groups())
                .map(|_| LoadQueue::new(cfg.l1_ldq_entries))
                .collect(),
            l2_cam: (0..vaults).map(|_| Cam::new(cfg.l2_cam)).collect(),
            l2_ldq: (0..vaults).map(|_| LoadQueue::new(cfg.l2_ldq_entries)).collect(),
            tsv: (0..vaults)
                .map(|_| Link::new_bus(cfg.tsv_latency, cfg.tsv_bytes_per_cycle))
                .collect(),
            nocs,
            serdes,
            update_buf: (0..cfg.vector_banks())
                .map(|_| UpdateBuffer::new(cfg.update_buffer_rows))
                .collect(),
            accum_busy: vec![0; cfg.vector_banks()],
            y_stash: vec![0.0; a.rows() * k],
            y_ready: vec![false; a.rows()],
            ys,
            entries_left,
            y_left,
            end_time: 0,
            noc_packets: 0,
            accum_updates: 0,
            rf: SramCounters::default(),
            queue_sram: SramCounters::default(),
            fpu_ops: 0,
            trace: TraceLog::disabled(),
            occ_hist: vec![OccupancySample::default(); Self::OCC_HISTORY * vaults],
            occ_rounds: 0,
            // Sixteen history points per stall window give the diagnosis a
            // trend, not a snapshot; without a window, sample sparsely.
            occ_every: cfg.watchdog.stall_window.map_or(65_536, |w| (w / 16).max(1)),
            occ_next: 0,
            obs_cycle: 0,
            sampler: None,
            flush_cb: None,
        }
    }

    /// The batch width `k` (≥ 1), as a counter increment.
    fn k(&self) -> u64 {
        self.xs.len() as u64
    }

    /// Registers the full gauge set on a fresh sampler: per-vault queue
    /// occupancy, CAM and DRAM row-buffer hit rates and TSV traffic, plus
    /// machine-wide NoC utilization. Probes capture only index lists, so
    /// they stay `'static` while reading any `Sim`.
    fn arm_sampler(&mut self, cfg: SamplerConfig) {
        // Pin each closure to a higher-ranked signature; without this the
        // compiler would tie it to this `Sim`'s lifetime and reject the
        // `'static` registration bound.
        fn probe<F: for<'x> Fn(&Sim<'x>) -> f64 + 'static>(f: F) -> F {
            f
        }
        let mut s: Sampler<Sim<'a>> = Sampler::new(cfg);
        let bgs_per_vault = self.cfg.shape.product_bgs_per_vault;
        for v in 0..self.cfg.shape.vaults() {
            let bgs: Vec<usize> = (v * bgs_per_vault..(v + 1) * bgs_per_vault).collect();
            let pes: Vec<usize> = (0..self.pes.len())
                .filter(|&p| self.pe_slots[p].global_vault(self.cfg) == v)
                .collect();
            let banks: Vec<usize> = (0..self.vector_banks.len())
                .filter(|&b| self.layout.vault_of_vector_bank(b) == v)
                .collect();

            let b = bgs.clone();
            s.register(
                MetricKey::vault("ldq", v, "l1-occupancy"),
                probe(move |s| b.iter().map(|&g| s.l1_ldq[g].len()).sum::<usize>() as f64),
            );
            s.register(
                MetricKey::vault("ldq", v, "l2-occupancy"),
                probe(move |s| s.l2_ldq[v].len() as f64),
            );
            // Latency probe: age (in cycles) of the vault's longest-waiting
            // LDQ entry across its L1 bank-group queues and the L2 queue. A
            // growing age under flat occupancy means a stuck queue; a deep
            // but moving queue keeps the age bounded.
            let b = bgs.clone();
            s.register(
                MetricKey::vault("ldq", v, "queue-age"),
                probe(move |s| {
                    let now = s.obs_cycle;
                    let l1 = b.iter().map(|&g| s.l1_ldq[g].oldest_age(now)).max().unwrap_or(0);
                    l1.max(s.l2_ldq[v].oldest_age(now)) as f64
                }),
            );
            let p = pes.clone();
            s.register(
                MetricKey::vault("pe", v, "pending"),
                probe(move |s| p.iter().map(|&i| s.pes[i].pending).sum::<usize>() as f64),
            );
            let b = bgs;
            s.register(
                MetricKey::vault("cam", v, "l1-hit-rate"),
                probe(move |s| {
                    let mut c = CamCounters::default();
                    for &g in &b {
                        c += *s.prod_l1[g].counters();
                    }
                    c.hit_rate()
                }),
            );
            s.register(
                MetricKey::vault("cam", v, "l2-hit-rate"),
                probe(move |s| s.l2_cam[v].counters().hit_rate()),
            );
            s.register(
                MetricKey::vault("dram", v, "row-hit-rate"),
                probe(move |s| {
                    let (mut hits, mut activates) = (0u64, 0u64);
                    for &i in &pes {
                        let c = s.matrix_banks[i].counters();
                        hits += c.row_hits;
                        activates += c.activates;
                    }
                    for &b in &banks {
                        let c = s.vector_banks[b].counters();
                        hits += c.row_hits;
                        activates += c.activates;
                    }
                    if hits + activates == 0 {
                        0.0
                    } else {
                        hits as f64 / (hits + activates) as f64
                    }
                }),
            );
            s.register(
                MetricKey::vault("tsv", v, "bytes"),
                probe(move |s| s.tsv[v].bytes_total() as f64),
            );
        }
        fn total_byte_hops(s: &Sim<'_>) -> u64 {
            s.nocs.iter().map(MeshNoc::byte_hops).sum::<u64>()
                + s.serdes.as_ref().map_or(0, MeshNoc::byte_hops)
        }
        s.register(MetricKey::global("noc", "byte-hops"), probe(|s| total_byte_hops(s) as f64));
        // Pending events in the calendar queue — the event engine's own
        // load gauge (how much same-cycle batching the drain loop sees).
        s.register(MetricKey::global("engine", "queue-depth"), probe(|s| s.q.len() as f64));
        // Utilization is the byte-hop delta per cycle since the previous
        // sample; the Cells carry that previous point between reads.
        let prev = Cell::new((0u64, 0u64));
        s.register(
            MetricKey::global("noc", "utilization"),
            probe(move |s| {
                let (hops, now) = (total_byte_hops(s), s.obs_cycle);
                let (prev_hops, prev_cycle) = prev.replace((hops, now));
                let dt = now.saturating_sub(prev_cycle);
                if dt == 0 {
                    0.0
                } else {
                    hops.saturating_sub(prev_hops) as f64 / dt as f64
                }
            }),
        );
        self.sampler = Some(s);
    }

    /// Routes a packet between two global vaults; returns the arrival
    /// cycle, or `None` when an injected fault dropped the packet (the
    /// caller then skips the delivery and the lost message eventually
    /// surfaces as a diagnosed deadlock).
    ///
    /// Same vault: free (the packet never leaves the vault controller).
    /// Same cube: the intra-cube vault mesh. Different cubes: the base-die
    /// network carries the packet from the source vault onto the cube's
    /// SerDes links (every vault has a path to the link controllers, so
    /// inter-cube traffic is not funnelled through one vault), across the
    /// cube mesh, then over the remote cube's mesh from the mirrored entry
    /// position to the target vault.
    fn route(&mut self, t: Cycle, src: usize, dst: usize, bytes: usize) -> Option<Cycle> {
        if src == dst {
            return Some(t);
        }
        let n = self.noc_packets;
        self.noc_packets += 1;
        if self.cfg.faults.drop_noc_packet == Some(n) {
            return None;
        }
        let t = match self.cfg.faults.delay_noc {
            Some((from, delay)) if n >= from => t + delay,
            _ => t,
        };
        let (sc, sv) = (self.layout.cube_of_vault(src), self.layout.local_vault(src));
        let (dc, dv) = (self.layout.cube_of_vault(dst), self.layout.local_vault(dst));
        if sc == dc {
            return Some(self.nocs[sc].send(t, sv, dv, bytes));
        }
        // A multi-cube shape always builds a SerDes mesh; if that invariant
        // ever breaks, dropping the packet surfaces as a diagnosed deadlock
        // instead of crashing the worker.
        let serdes = self.serdes.as_mut()?;
        let t = serdes.send(t, sc, dc, bytes);
        Some(self.nocs[dc].send(t, sv, dv, bytes))
    }

    /// Cycles an injected vault stall holds an event before retrying it.
    const STALL_RETRY: Cycle = 256;

    /// True when an injected vault stall wedges `ev` at cycle `t`.
    fn stalled(&self, ev: &Ev, t: Cycle) -> bool {
        let Some((stalled_vault, from)) = self.cfg.faults.stall_vault else {
            return false;
        };
        if t < from {
            return false;
        }
        match *ev {
            Ev::VaultXReq { vault, .. }
            | Ev::VaultXResp { vault, .. }
            | Ev::YAtVault { vault, .. } => vault as usize == stalled_vault,
            _ => false,
        }
    }

    fn run(&mut self) -> Result<(), SimError> {
        if self.cfg.faults.panic_on_run {
            // lint:allow(R1) injected fault: the supervisor tests assert this panic
            panic!("injected fault: deliberate panic at simulation start");
        }
        // Kick off the first DRAM row load of every PE.
        for pe in 0..self.pes.len() {
            self.try_load(pe as u32, 0);
        }
        // Forward-progress watchdog: retirement means the (entries_left,
        // y_left) pair moved. A healthy run retires continuously; a stalled
        // one trips the window long before any wall-clock patience runs out.
        //
        // The loop drains the queue one whole cycle at a time. Within a
        // cycle the engine hands events back in scheduling order, and
        // same-cycle follow-ups land behind the batch — so this batch loop
        // delivers the exact event stream the old one-pop-at-a-time loop
        // did. The watchdog, occupancy, and sampler checks depend only on
        // `t` (constant across the batch) and are idempotent within a
        // cycle, so checking once per drained batch is exactly the
        // per-event checks of the pop loop.
        let watchdog = self.cfg.watchdog;
        let mut last_progress = (self.entries_left, self.y_left);
        let mut last_progress_cycle: Cycle = 0;
        let mut batch: Vec<Ev> = Vec::new();
        while let Some(t) = self.q.peek_time() {
            self.end_time = self.end_time.max(t);
            // Watchdog checks run before the drain so an aborting
            // diagnosis still sees the wedged cycle's events as pending.
            if let Some(budget) = watchdog.max_cycles {
                if t > budget {
                    return Err(SimError::CycleBudgetExceeded {
                        budget,
                        diagnosis: self.diagnose_at(t),
                    });
                }
            }
            // Check the stall window before handling (and in particular
            // before the stall intercept below, whose bounced events would
            // otherwise starve this check forever).
            if last_progress != (0, 0) {
                if let Some(window) = watchdog.stall_window {
                    if t.saturating_sub(last_progress_cycle) > window {
                        return Err(SimError::NoProgress {
                            window,
                            diagnosis: self.diagnose_at(t),
                        });
                    }
                }
            }
            // Observation points, before the stall intercept so a wedged
            // vault keeps being recorded while it livelocks. Pure reads:
            // neither can change scheduling.
            if t >= self.occ_next {
                self.record_occupancy(t);
                self.occ_next = (t - t % self.occ_every) + self.occ_every;
            }
            if self.sampler.as_ref().is_some_and(|s| s.due(t)) {
                if let Some(mut sampler) = self.sampler.take() {
                    self.obs_cycle = t;
                    sampler.tick(t, self);
                    // Window boundary: hand the caller this window's
                    // samples to persist. Reads the sampler only —
                    // simulated timing is unchanged.
                    if let Some(cb) = self.flush_cb.as_mut() {
                        let samples: Vec<(&MetricKey, f64)> = sampler.last_samples().collect();
                        cb(&SampleFlush { cycle: t, samples: &samples });
                    }
                    self.sampler = Some(sampler);
                }
            }
            if self.q.drain_cycle(&mut batch).is_none() {
                break;
            }
            for ev in batch.drain(..) {
                if self.stalled(&ev, t) {
                    // The vault controller is wedged: bounce the event
                    // forward instead of handling it. Retirement stops
                    // while the queue never drains, so only the stall
                    // window can catch it.
                    self.q.schedule(t + Self::STALL_RETRY, ev);
                    continue;
                }
                if self.trace.is_enabled() {
                    self.trace.push_with(|| TraceRecord { cycle: t, event: trace_event(&ev) });
                }
                match ev {
                    Ev::PeStep { pe } => self.pe_step(pe, t),
                    Ev::RowLoaded { pe, row_id } => self.row_loaded(pe, row_id, t),
                    Ev::VaultXReq { vault, block, from } => self.vault_x_req(vault, block, from, t),
                    Ev::VaultXResp { vault, block } => self.vault_x_resp(vault, block, t),
                    Ev::BankXReq { bank, block } => self.bank_x_req(bank, block, t),
                    Ev::L1Fill { bg, block } => self.l1_fill(bg, block, t),
                    Ev::YAtVault { vault, row } => self.y_at_vault(vault, row, t),
                    Ev::YAtBank { bank, row } => self.y_at_bank(bank, row, t),
                }
            }
            let progress = (self.entries_left, self.y_left);
            if progress != last_progress {
                last_progress = progress;
                last_progress_cycle = t;
            }
        }
        if self.entries_left > 0 || self.y_left > 0 || !self.pes.iter().all(ProductPe::finished) {
            return Err(SimError::Deadlock(self.diagnose_at(self.q.now())));
        }
        Ok(())
    }

    /// Per-vault outstanding work right now: LDQ occupancy and PE in-flight
    /// requests, indexed by global vault id.
    fn vault_occupancy(&self) -> Vec<VaultOccupancy> {
        let mut occ: Vec<VaultOccupancy> = (0..self.cfg.shape.vaults())
            .map(|vault| VaultOccupancy { vault, ..VaultOccupancy::default() })
            .collect();
        for (v, ldq) in self.l2_ldq.iter().enumerate() {
            occ[v].l2_ldq = ldq.len();
        }
        for (bg, ldq) in self.l1_ldq.iter().enumerate() {
            occ[bg / self.cfg.shape.product_bgs_per_vault].l1_ldq += ldq.len();
        }
        for (p, pe) in self.pes.iter().enumerate() {
            occ[self.pe_slots[p].global_vault(self.cfg)].pe_pending += pe.pending;
        }
        occ
    }

    /// How many history-ring samples each vault keeps.
    const OCC_HISTORY: usize = 32;

    /// Pushes the current occupancy of every vault into the history ring
    /// (one round of `vaults` consecutive samples per call).
    fn record_occupancy(&mut self, t: Cycle) {
        let occ = self.vault_occupancy();
        let vaults = occ.len();
        let slot = (self.occ_rounds % Self::OCC_HISTORY) * vaults;
        for (i, o) in occ.iter().enumerate() {
            self.occ_hist[slot + i] = OccupancySample {
                cycle: t,
                l1_ldq: o.l1_ldq,
                l2_ldq: o.l2_ldq,
                pe_pending: o.pe_pending,
            };
        }
        self.occ_rounds += 1;
    }

    /// Snapshots outstanding work for a watchdog report at abort cycle
    /// `now`: per-vault LDQ occupancy and PE in-flight requests (with the
    /// recent occupancy time series of each), naming the most loaded vault
    /// (ties broken toward the lowest id) as the suspect.
    fn diagnose_at(&self, now: Cycle) -> StallDiagnosis {
        let occ = self.vault_occupancy();
        let vaults = occ.len();
        let suspect_vault = occ
            .iter()
            .filter(|o| o.total() > 0)
            .max_by_key(|o| (o.total(), std::cmp::Reverse(o.vault)))
            .map(|o| o.vault);
        let first_round = self.occ_rounds.saturating_sub(Self::OCC_HISTORY);
        let history = occ
            .iter()
            .filter(|o| o.total() > 0)
            .map(|o| {
                let mut samples: Vec<OccupancySample> = (first_round..self.occ_rounds)
                    .map(|r| self.occ_hist[(r % Self::OCC_HISTORY) * vaults + o.vault])
                    .collect();
                samples.push(OccupancySample {
                    cycle: now,
                    l1_ldq: o.l1_ldq,
                    l2_ldq: o.l2_ldq,
                    pe_pending: o.pe_pending,
                });
                OccupancyHistory { vault: o.vault, samples }
            })
            .collect();
        StallDiagnosis {
            cycle: now,
            entries_left: self.entries_left,
            y_left: self.y_left,
            pending_events: self.q.len(),
            suspect_vault,
            vaults: occ.into_iter().filter(|o| o.total() > 0).collect(),
            history,
        }
    }

    /// Issues the next DRAM row load if the PE queue has space.
    fn try_load(&mut self, pe: u32, t: Cycle) {
        let p = pe as usize;
        let state = &mut self.pes[p];
        if state.load_in_flight
            || state.next_load >= state.dram_rows.len()
            || state.queue.len() >= self.cfg.pe_queue_rows
        {
            return;
        }
        let row_id = state.next_load as u32;
        state.next_load += 1;
        state.load_in_flight = true;
        let done = self.matrix_banks[p].access(t, row_id as u64, size::DRAM_ROW, AccessKind::Read);
        self.q.schedule(done, Ev::RowLoaded { pe, row_id });
    }

    fn row_loaded(&mut self, pe: u32, row_id: u32, t: Cycle) {
        let p = pe as usize;
        let r = row_id as usize;
        let state = &mut self.pes[p];
        let matrix_row = state.dram_rows[r].matrix_row;
        let n = state.dram_rows[r].entries.len();
        state.queue.push_back(crate::pe::LoadedRow { id: row_id, remaining: n });
        for i in 0..n {
            let (col, val) = state.dram_rows[r].entries[i];
            state.fresh.push_back(PeEntry { row_id, matrix_row, col, val });
        }
        state.load_in_flight = false;
        self.queue_sram.writes += n as u64;
        self.try_load(pe, t);
        self.wake(pe, t);
    }

    /// Schedules a scan step if the PE has work and none is scheduled.
    fn wake(&mut self, pe: u32, t: Cycle) {
        let state = &mut self.pes[pe as usize];
        if !state.step_scheduled && state.has_work() {
            state.step_scheduled = true;
            self.q.schedule(t, Ev::PeStep { pe });
        }
    }

    fn pe_step(&mut self, pe: u32, t: Cycle) {
        let p = pe as usize;
        self.pes[p].step_scheduled = false;

        if let Some(entry) = self.pes[p].ready.pop_front() {
            self.pes[p].steps += 1;
            // A response satisfied this entry earlier; compute now.
            self.compute(pe, entry, t);
        } else if let Some(entry) = self.pes[p].fresh.pop_front() {
            self.pes[p].steps += 1;
            self.queue_sram.reads += 1;
            let block = self.layout.block_of_element(entry.col as usize);
            let bg = self.pe_slots[p].global_bank_group(self.cfg);
            if self.prod_l1[bg].lookup(block).is_some() {
                // Case II: X_j ready via the L1 CAM (one RF write per
                // vector in the batch).
                self.rf.writes += self.k();
                self.compute(pe, entry, t);
            } else {
                // Case I: X_j not ready — non-blocking remote request.
                self.pes[p].pending += 1;
                let push = self.l1_ldq[bg].push_forced_at(block, PeWaiter { pe, entry }, t);
                if push == LdqPush::NewRequest || !self.cfg.ldq_dedup {
                    let vault = self.pe_slots[p].global_vault(self.cfg);
                    let t_req =
                        self.tsv[vault].transfer(t + self.cfg.l1_cam_latency, size::X_REQUEST);
                    self.q.schedule(
                        t_req,
                        Ev::VaultXReq {
                            vault: vault as u32,
                            block,
                            from: Requester::BankGroup(bg),
                        },
                    );
                }
            }
        }

        // Continue scanning after L_p cycles if work remains.
        if self.pes[p].has_work() {
            self.pes[p].step_scheduled = true;
            self.q.schedule(t + self.cfg.l_p, Ev::PeStep { pe });
        }
    }

    /// Performs `Y_i += A_ij · X_j` (for every vector in the batch) and the
    /// completion bookkeeping.
    ///
    /// Only the *remaining* count is tracked per in-flight row; when it
    /// reaches zero the full dot product of the row is reduced in canonical
    /// CSR entry order — one multiply-accumulate per non-zero has been paid
    /// event-by-event, so the FPU counters are exact, while the reduction
    /// order is fixed regardless of when each X response arrived. This makes
    /// the output bitwise-identical to [`Csr::spmv`] and independent of
    /// batch composition.
    fn compute(&mut self, pe: u32, entry: PeEntry, t: Cycle) {
        let p = pe as usize;
        self.fpu_ops += self.k();
        self.rf.reads += self.k();

        let flush = match self.pes[p].row_remaining_mut(entry.matrix_row) {
            Some(remaining) => {
                *remaining -= 1;
                *remaining == 0
            }
            None => {
                debug_assert!(false, "computed entry's matrix row must be in the PE's row table");
                false
            }
        };

        let popped = self.pes[p].complete_entry(entry.row_id);
        debug_assert!(popped.is_some(), "completed entry's row must be resident");
        let popped = popped.unwrap_or(0);
        self.entries_left -= 1;
        if popped > 0 {
            self.try_load(pe, t);
        }

        if flush {
            let row = entry.matrix_row as usize;
            let base = row * self.xs.len();
            // Canonical reduction, exactly the oracle's loop shape.
            for (v, x) in self.xs.iter().enumerate() {
                let mut acc = 0.0;
                for (c, val) in self.a.row(row) {
                    acc += val * x[c as usize];
                }
                self.y_stash[base + v] = acc;
            }
            self.y_ready[row] = true;
            self.flush_y(pe, entry.matrix_row, t + self.cfg.fpu_latency);
        }
    }

    /// Sends a completed partial `Y_i` toward its home vault (Type III).
    fn flush_y(&mut self, pe: u32, row: u32, t: Cycle) {
        let bytes = size::y_partial_bytes(self.xs.len());
        let src_vault = self.pe_slots[pe as usize].global_vault(self.cfg);
        let block = self.layout.block_of_element(row as usize);
        let home_vault = self.layout.home_vault_of_block(block);
        let t1 = self.tsv[src_vault].transfer(t, bytes);
        let Some(t2) = self.route(t1, src_vault, home_vault, bytes) else {
            return;
        };
        self.q.schedule(t2, Ev::YAtVault { vault: home_vault as u32, row });
    }

    /// Type I: X request at a vault controller.
    fn vault_x_req(&mut self, vault: u32, block: u64, from: Requester, t: Cycle) {
        let v = vault as usize;
        let t_look = t + self.cfg.l2_cam_latency;
        if self.l2_cam[v].lookup(block).is_some() {
            self.respond(v, block, from, t_look);
            return;
        }
        if self.l2_ldq[v].push_forced_at(block, from, t) != LdqPush::NewRequest
            && self.cfg.ldq_dedup
        {
            return; // deduplicated: an identical request is already in flight
        }
        let home_vault = self.layout.home_vault_of_block(block);
        if home_vault == v {
            let bank = self.layout.home_bank_of_block(block);
            let t1 = self.tsv[v].transfer(t_look, size::X_REQUEST);
            self.q.schedule(t1, Ev::BankXReq { bank: bank as u32, block });
        } else {
            let Some(t1) = self.route(t_look, v, home_vault, size::X_REQUEST) else {
                return;
            };
            self.q.schedule(
                t1,
                Ev::VaultXReq { vault: home_vault as u32, block, from: Requester::Vault(v) },
            );
        }
    }

    /// Sends an X response from vault `v` toward a requester. The response
    /// carries one block per batched vector behind a shared header.
    fn respond(&mut self, v: usize, block: u64, to: Requester, t: Cycle) {
        let bytes = size::x_response_bytes(self.xs.len());
        match to {
            Requester::BankGroup(bg) => {
                let t1 = self.tsv[v].transfer(t, bytes);
                self.q.schedule(t1, Ev::L1Fill { bg: bg as u32, block });
            }
            Requester::Vault(w) => {
                let Some(t1) = self.route(t, v, w, bytes) else {
                    return;
                };
                self.q.schedule(t1, Ev::VaultXResp { vault: w as u32, block });
            }
        }
    }

    /// Type II: X response at a vault controller — fill L2, wake waiters.
    fn vault_x_resp(&mut self, vault: u32, block: u64, t: Cycle) {
        let v = vault as usize;
        self.l2_cam[v].insert(block, ());
        for waiter in self.l2_ldq[v].complete(block) {
            self.respond(v, block, waiter, t);
        }
    }

    /// X request at the owning vector bank: L1 CAM, then the bank (one
    /// 32-byte block read per batched vector).
    fn bank_x_req(&mut self, bank: u32, block: u64, t: Cycle) {
        let b = bank as usize;
        let vault = self.layout.vault_of_vector_bank(b);
        let t_look = t + self.cfg.l1_cam_latency;
        let t_ready = if self.vec_l1[vault].lookup(block).is_some() {
            t_look
        } else {
            let drow = self.layout.dram_row_of_block(block, self.cfg.timing.row_bytes);
            let done =
                self.vector_banks[b].access(t_look, drow, 32 * self.xs.len(), AccessKind::Read);
            self.vec_l1[vault].insert(block, ());
            done
        };
        let t1 = self.tsv[vault].transfer(t_ready, size::x_response_bytes(self.xs.len()));
        self.q.schedule(t1, Ev::VaultXResp { vault: vault as u32, block });
    }

    /// X response at a product bank group: fill L1 CAM, satisfy waiters.
    fn l1_fill(&mut self, bg: u32, block: u64, t: Cycle) {
        let g = bg as usize;
        self.prod_l1[g].insert(block, ());
        let k = self.k();
        for PeWaiter { pe, entry } in self.l1_ldq[g].complete(block) {
            self.rf.writes += k;
            let state = &mut self.pes[pe as usize];
            state.pending -= 1;
            state.ready.push_back(entry);
            self.wake(pe, t);
        }
    }

    /// Type III at the home vault: forward down the TSV to the vector bank.
    fn y_at_vault(&mut self, vault: u32, row: u32, t: Cycle) {
        let v = vault as usize;
        let block = self.layout.block_of_element(row as usize);
        let bank = self.layout.home_bank_of_block(block);
        let t1 = self.tsv[v].transfer(t, size::y_partial_bytes(self.xs.len()));
        self.q.schedule(t1, Ev::YAtBank { bank: bank as u32, row });
    }

    /// Accumulation-PE: merge the stashed per-vector partials into the
    /// update buffer. Each matrix row arrives here exactly once (whole rows
    /// belong to one PE), so the stash flag is consumed on delivery; a
    /// clear flag means the packet was lost to an injected fault and the
    /// run surfaces as a diagnosed deadlock instead.
    fn y_at_bank(&mut self, bank: u32, row: u32, t: Cycle) {
        let n = self.accum_updates;
        self.accum_updates += 1;
        let r = row as usize;
        if !std::mem::replace(&mut self.y_ready[r], false) {
            return;
        }
        let base = r * self.xs.len();
        if self.cfg.faults.flip_accum_update == Some(n) {
            // Injected corruption: large enough that the output oracle in
            // `finish` must catch it — never a silently wrong result.
            for val in &mut self.y_stash[base..base + self.xs.len()] {
                *val += 1.0;
            }
        }
        let b = bank as usize;
        let start = t.max(self.accum_busy[b]);
        let drow = self.layout.dram_row_of_y(r, self.cfg.timing.row_bytes);
        let k = self.xs.len() as u64;
        self.queue_sram.reads += k;
        let mut t_ready = start;
        match self.update_buf[b].touch(drow) {
            UpdateOutcome::Hit => {}
            UpdateOutcome::Miss { writeback } => {
                if let Some(victim) = writeback {
                    t_ready = self.vector_banks[b].access(
                        t_ready,
                        victim,
                        self.cfg.timing.row_bytes,
                        AccessKind::Write,
                    );
                }
                t_ready = self.vector_banks[b].access(
                    t_ready,
                    drow,
                    self.cfg.timing.row_bytes,
                    AccessKind::Read,
                );
            }
        }
        let done = t_ready + self.cfg.fpu_latency;
        self.queue_sram.writes += k;
        self.fpu_ops += k;
        // Direct assignment, not `+=`: each row lands exactly once, and
        // adding into a 0.0 initializer would turn a computed -0.0 into
        // +0.0, breaking bitwise equality with the oracle.
        for v in 0..self.xs.len() {
            self.ys[v][r] = self.y_stash[base + v];
        }
        self.accum_busy[b] = done;
        self.end_time = self.end_time.max(done);
        self.y_left -= 1;
    }

    /// Final accounting, oracle validation and report assembly. Returns the
    /// report (with an empty `output` field) plus one output vector per
    /// batched input vector, each validated against the software oracle.
    fn finish(mut self, a: &Csr) -> Result<(SimReport, Vec<Vec<f64>>), SimError> {
        // Write back dirty update-buffer rows (counted for energy; by then
        // the critical path is over, so time is not extended). Evictions
        // during the run already wrote back `writebacks()` rows; residents
        // are the remainder.
        for b in 0..self.update_buf.len() {
            let resident: Vec<u64> = self.update_buf[b].resident_rows().collect();
            debug_assert!(
                resident.len() as u64 + self.update_buf[b].writebacks()
                    == self.update_buf[b].misses(),
                "every missed row is either resident or was written back"
            );
            for drow in resident {
                self.vector_banks[b].access(
                    self.end_time,
                    drow,
                    self.cfg.timing.row_bytes,
                    AccessKind::Write,
                );
            }
        }

        let mut activity = ActivitySummary {
            cycles: self.end_time,
            fpu_ops: self.fpu_ops,
            pe_queue: self.queue_sram,
            register_file: self.rf,
            ..Default::default()
        };
        for bank in self.matrix_banks.iter().chain(self.vector_banks.iter()) {
            let c = bank.counters();
            activity.dram_activates += c.activates;
            activity.dram_read_beats += c.read_beats;
            activity.dram_write_beats += c.write_beats;
        }
        for cam in self.prod_l1.iter().chain(self.vec_l1.iter()) {
            activity.l1_cam += *cam.counters();
        }
        for cam in &self.l2_cam {
            activity.l2_cam += *cam.counters();
        }
        for ldq in &self.l1_ldq {
            activity.l1_ldq += *ldq.counters();
        }
        for ldq in &self.l2_ldq {
            activity.l2_ldq += *ldq.counters();
        }
        for link in &self.tsv {
            activity.tsv_bytes += link.bytes_total();
        }
        for noc in &self.nocs {
            activity.noc_byte_hops += noc.byte_hops();
        }
        if let Some(s) = &self.serdes {
            activity.noc_byte_hops += s.byte_hops();
        }

        // L1 hit rate over *product* bank groups only (the Figure 6(b)
        // metric is about input-vector reuse at the Product-PEs).
        let mut prod_l1_counters = spacea_sim::stats::CamCounters::default();
        for cam in &self.prod_l1 {
            prod_l1_counters += *cam.counters();
        }
        let mut l2_counters = spacea_sim::stats::CamCounters::default();
        for cam in &self.l2_cam {
            l2_counters += *cam.counters();
        }

        let pe_work: Vec<u64> = self.pes.iter().map(|p| p.work).collect();
        let normalized_workload = SimReport::normalized_workload_of(&pe_work);
        let elapsed = self.end_time.max(1) as f64;
        let pe_busy_fraction = spacea_matrix::reduce::sum_f64(
            self.pes.iter().map(|p| (p.steps * self.cfg.l_p) as f64 / elapsed),
        ) / self.pes.len() as f64;
        let matrix_bank_busy_fraction = spacea_matrix::reduce::sum_f64(
            self.matrix_banks.iter().map(|b| b.busy_cycles() as f64 / elapsed),
        ) / self.matrix_banks.len() as f64;
        let vector_bank_busy_fraction = spacea_matrix::reduce::sum_f64(
            self.vector_banks.iter().map(|b| b.busy_cycles() as f64 / elapsed),
        ) / self.vector_banks.len() as f64;
        let (ub_hits, ub_misses) =
            self.update_buf.iter().fold((0u64, 0u64), |(h, m), b| (h + b.hits(), m + b.misses()));
        let update_buffer_hit_rate = if ub_hits + ub_misses == 0 {
            0.0
        } else {
            ub_hits as f64 / (ub_hits + ub_misses) as f64
        };

        // Oracle validation (Section V-A), once per batched vector.
        let validated = true;
        for (v, ys) in self.ys.iter().enumerate() {
            let expected = a.spmv(self.xs[v]);
            for (i, (&sim, &exp)) in ys.iter().zip(expected.iter()).enumerate() {
                let tol = 1e-9 * exp.abs().max(1.0);
                if (sim - exp).abs() > tol {
                    return Err(SimError::ValidationFailed {
                        index: i,
                        simulated: sim,
                        expected: exp,
                    });
                }
            }
        }

        // The engine's documented counter invariant: on a drained queue,
        // every scheduled event was processed exactly once. The telemetry
        // counters below are only meaningful because this holds.
        self.q.try_check_counters().map_err(SimError::CounterInvariant)?;
        debug_assert!(self.q.is_empty(), "simulation finished with pending events");

        let report = SimReport {
            cycles: self.end_time,
            seconds: self.end_time as f64 * 1e-9,
            events_scheduled: self.q.scheduled_count(),
            events_processed: self.q.processed_count(),
            l1_hit_rate: prod_l1_counters.hit_rate(),
            l2_hit_rate: l2_counters.hit_rate(),
            tsv_bytes: activity.tsv_bytes,
            noc_byte_hops: activity.noc_byte_hops,
            pe_work,
            normalized_workload,
            update_buffer_hit_rate,
            pe_busy_fraction,
            matrix_bank_busy_fraction,
            vector_bank_busy_fraction,
            output: Vec::new(),
            validated,
            activity,
        };
        Ok((report, self.ys))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spacea_mapping::{LocalityMapping, MappingStrategy, NaiveMapping};
    use spacea_matrix::gen::{
        banded, rmat, uniform_random, BandedConfig, RmatConfig, UniformConfig,
    };

    fn run(a: &Csr, cfg: HwConfig) -> SimReport {
        let x: Vec<f64> = (0..a.cols()).map(|i| 1.0 + (i % 7) as f64).collect();
        let mapping = LocalityMapping::default().map(a, &cfg.shape);
        Machine::new(cfg)
            .run(RunSpec::spmv(a, &x, &mapping))
            .expect("simulation must validate")
            .into_report()
    }

    #[test]
    fn banded_matrix_validates() {
        let a = banded(&BandedConfig { n: 200, ..Default::default() });
        let r = run(&a, HwConfig::tiny());
        assert!(r.validated);
        assert!(r.cycles > 0);
        assert_eq!(r.activity.fpu_ops as usize, a.nnz() + count_nonempty_rows(&a));
    }

    #[test]
    fn power_law_matrix_validates() {
        let a = rmat(&RmatConfig { n: 300, edges: 1500, ..Default::default() });
        let r = run(&a, HwConfig::tiny());
        assert!(r.validated);
    }

    #[test]
    fn uniform_matrix_validates_with_naive_mapping() {
        let a = uniform_random(&UniformConfig { rows: 150, cols: 150, row_nnz: 6, seed: 9 });
        let cfg = HwConfig::tiny();
        let x = vec![1.0; a.cols()];
        let mapping = NaiveMapping::default().map(&a, &cfg.shape);
        let r = Machine::new(cfg).run(RunSpec::spmv(&a, &x, &mapping)).unwrap().into_report();
        assert!(r.validated);
    }

    #[test]
    fn fused_spmm_matches_sequential_spmv_bitwise() {
        let a = rmat(&RmatConfig { n: 200, edges: 900, ..Default::default() });
        let cfg = HwConfig::tiny();
        let mapping = LocalityMapping::default().map(&a, &cfg.shape);
        let xs: Vec<Vec<f64>> = (0..4)
            .map(|v| (0..a.cols()).map(|i| ((i * 7 + v * 13) % 11) as f64 - 5.0).collect())
            .collect();
        let m = Machine::new(cfg);
        let fused = m.run(RunSpec::spmm(&a, &xs, &mapping)).unwrap().into_spmm();
        assert_eq!(fused.batch(), 4);
        for (v, x) in xs.iter().enumerate() {
            let solo = m.run(RunSpec::spmv(&a, x, &mapping)).unwrap().into_report();
            let same = fused.outputs[v]
                .iter()
                .zip(solo.output.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "fused output {v} must be bitwise-identical to the solo run");
        }
    }

    #[test]
    fn fused_spmm_amortizes_cycles_per_vector() {
        let a = banded(&BandedConfig { n: 300, ..Default::default() });
        let cfg = HwConfig::tiny();
        let mapping = LocalityMapping::default().map(&a, &cfg.shape);
        let x: Vec<f64> = (0..a.cols()).map(|i| 1.0 + (i % 7) as f64).collect();
        let m = Machine::new(cfg);
        let solo = m.run(RunSpec::spmv(&a, &x, &mapping)).unwrap().into_report();
        let xs = vec![x; 8];
        let fused = m.run(RunSpec::spmm(&a, &xs, &mapping)).unwrap().into_spmm();
        assert!(
            fused.cycles_per_vector() < solo.cycles as f64,
            "8-wide batch must cost fewer cycles per vector ({} vs {})",
            fused.cycles_per_vector(),
            solo.cycles
        );
        // The single fused pass streams the matrix once, so it is cheaper
        // in total DRAM activations than 8 separate passes would be.
        assert!(fused.report.activity.dram_activates < 8 * solo.activity.dram_activates);
    }

    #[test]
    fn empty_batch_rejected() {
        let a = banded(&BandedConfig { n: 64, ..Default::default() });
        let cfg = HwConfig::tiny();
        let mapping = LocalityMapping::default().map(&a, &cfg.shape);
        let err = Machine::new(cfg).run(RunSpec::spmm(&a, &[], &mapping)).unwrap_err();
        assert!(matches!(err, SimError::EmptyBatch));
    }

    #[test]
    fn k1_spmm_timing_equals_spmv() {
        let a = banded(&BandedConfig { n: 200, ..Default::default() });
        let cfg = HwConfig::tiny();
        let mapping = LocalityMapping::default().map(&a, &cfg.shape);
        let x: Vec<f64> = (0..a.cols()).map(|i| 1.0 + (i % 5) as f64).collect();
        let m = Machine::new(cfg);
        let solo = m.run(RunSpec::spmv(&a, &x, &mapping)).unwrap().into_report();
        let fused =
            m.run(RunSpec::spmm(&a, std::slice::from_ref(&x), &mapping)).unwrap().into_spmm();
        assert_eq!(fused.report.cycles, solo.cycles);
        assert_eq!(fused.report.tsv_bytes, solo.tsv_bytes);
        assert_eq!(fused.report.activity.fpu_ops, solo.activity.fpu_ops);
    }

    #[test]
    fn deterministic_cycle_counts() {
        let a = banded(&BandedConfig { n: 128, ..Default::default() });
        let r1 = run(&a, HwConfig::tiny());
        let r2 = run(&a, HwConfig::tiny());
        assert_eq!(r1.cycles, r2.cycles);
        assert_eq!(r1.tsv_bytes, r2.tsv_bytes);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = banded(&BandedConfig { n: 64, ..Default::default() });
        let cfg = HwConfig::tiny();
        let mapping = LocalityMapping::default().map(&a, &cfg.shape);
        let err = Machine::new(cfg).run(RunSpec::spmv(&a, &[1.0; 3], &mapping)).unwrap_err();
        assert!(matches!(err, SimError::DimensionMismatch { .. }));
    }

    #[test]
    fn mapping_mismatch_rejected() {
        let a = banded(&BandedConfig { n: 64, ..Default::default() });
        let cfg = HwConfig::tiny();
        let other_shape = spacea_mapping::MachineShape {
            cubes: 1,
            vaults_per_cube: 2,
            product_bgs_per_vault: 2,
            banks_per_bg: 2,
        };
        let mapping = LocalityMapping::default().map(&a, &other_shape);
        let x = vec![1.0; a.cols()];
        let err = Machine::new(cfg).run(RunSpec::spmv(&a, &x, &mapping)).unwrap_err();
        assert!(matches!(err, SimError::MappingMismatch(_)));
    }

    #[test]
    fn multi_cube_machine_validates() {
        let a = banded(&BandedConfig { n: 256, ..Default::default() });
        let shape = spacea_mapping::MachineShape {
            cubes: 2,
            vaults_per_cube: 4,
            product_bgs_per_vault: 2,
            banks_per_bg: 2,
        };
        let r = run(&a, HwConfig::with_shape(shape));
        assert!(r.validated);
        assert!(r.noc_byte_hops > 0, "multi-cube run must use the network");
    }

    #[test]
    fn l1_hits_occur_on_banded_input() {
        let a = banded(&BandedConfig { n: 400, ..Default::default() });
        let r = run(&a, HwConfig::tiny());
        assert!(r.l1_hit_rate > 0.1, "banded locality must produce L1 hits, got {}", r.l1_hit_rate);
    }

    #[test]
    fn proposed_mapping_beats_naive_on_traffic() {
        let a = banded(&BandedConfig { n: 600, ..Default::default() });
        let cfg = HwConfig::tiny();
        let x = vec![1.0; a.cols()];
        let prop = LocalityMapping::default().map(&a, &cfg.shape);
        let naive = NaiveMapping::default().map(&a, &cfg.shape);
        let rp = Machine::new(cfg.clone()).run(RunSpec::spmv(&a, &x, &prop)).unwrap().into_report();
        let rn = Machine::new(cfg).run(RunSpec::spmv(&a, &x, &naive)).unwrap().into_report();
        assert!(
            rp.tsv_bytes < rn.tsv_bytes,
            "proposed mapping TSV {} must beat naive {}",
            rp.tsv_bytes,
            rn.tsv_bytes
        );
    }

    #[test]
    fn tsv_latency_slowdown() {
        let a = banded(&BandedConfig { n: 300, ..Default::default() });
        let mut fast = HwConfig::tiny();
        fast.tsv_latency = 1;
        let mut slow = HwConfig::tiny();
        slow.tsv_latency = 16;
        let rf = run(&a, fast);
        let rs = run(&a, slow);
        assert!(
            rs.cycles > rf.cycles,
            "16-cycle TSV ({}) must be slower than 1 ({})",
            rs.cycles,
            rf.cycles
        );
    }

    #[test]
    fn traced_run_matches_untraced() {
        let a = banded(&BandedConfig { n: 128, ..Default::default() });
        let cfg = HwConfig::tiny();
        let x = vec![1.0; a.cols()];
        let mapping = LocalityMapping::default().map(&a, &cfg.shape);
        let machine = Machine::new(cfg);
        let plain = machine.run(RunSpec::spmv(&a, &x, &mapping)).unwrap().into_report();
        let out = machine.run(RunSpec::spmv(&a, &x, &mapping).traced(500)).unwrap();
        let log = out.trace.expect("a traced spec must yield a trace");
        assert_eq!(plain.cycles, out.report.cycles, "tracing must not perturb timing");
        assert_eq!(log.records().len(), 500);
        assert!(log.dropped() > 0, "a real run has more than 500 events");
        // Cycles in the trace are non-decreasing (event order).
        for w in log.records().windows(2) {
            assert!(w[0].cycle <= w[1].cycle);
        }
        // The trace starts with the first row loads.
        assert!(matches!(log.records()[0].event, crate::trace::TraceEvent::RowLoaded { .. }));
    }

    #[test]
    fn observed_run_is_timing_neutral_and_collects_series() {
        let a = banded(&BandedConfig { n: 200, ..Default::default() });
        let cfg = HwConfig::tiny();
        let x: Vec<f64> = (0..a.cols()).map(|i| 1.0 + (i % 7) as f64).collect();
        let mapping = LocalityMapping::default().map(&a, &cfg.shape);
        let machine = Machine::new(cfg.clone());
        let plain = machine.run(RunSpec::spmv(&a, &x, &mapping)).unwrap().into_report();
        let obs = ObserveConfig { every: 64, capacity: 32, trace_capacity: 2000 };
        let out = machine.run(RunSpec::spmv(&a, &x, &mapping).observed(obs)).unwrap();
        let timeline = out.timeline.expect("an observed spec must yield a timeline");
        assert_eq!(plain.cycles, out.report.cycles, "observation must not perturb timing");
        assert_eq!(plain.tsv_bytes, out.report.tsv_bytes);

        // Every vault has counter series, each bounded by the capacity.
        assert_eq!(timeline.vaults().len(), cfg.shape.vaults());
        for (key, series) in &timeline.series {
            assert!(series.windows().len() <= 32, "{key}: unbounded series");
            assert!(!series.is_empty(), "{key}: the final snapshot guarantees a sample");
        }
        // The busy parts of the machine saw real occupancy and traffic.
        let tsv_total: f64 = (0..cfg.shape.vaults())
            .map(|v| {
                timeline.series(&spacea_obs::MetricKey::vault("tsv", v, "bytes")).unwrap().peak()
            })
            .sum();
        assert!(tsv_total > 0.0, "TSVs moved bytes");
        assert!(
            !timeline.slices.is_empty(),
            "the trace prefix must pair into at least one duration slice"
        );
        // The export round-trips through the validator.
        let summary = spacea_obs::json::validate_chrome_trace(&timeline.to_chrome_trace())
            .expect("export must be valid Chrome trace JSON");
        assert!(summary.counter_tracks.len() >= cfg.shape.vaults());
        assert_eq!(summary.duration_events, timeline.slices.len());
    }

    #[test]
    fn empty_matrix_completes() {
        let a = Csr::from_parts(8, 8, vec![0; 9], vec![], vec![]).unwrap();
        let r = run(&a, HwConfig::tiny());
        assert!(r.validated);
        assert_eq!(r.output, vec![0.0; 8]);
    }

    /// Runs the banded test matrix on `cfg`, returning the error.
    fn run_err(cfg: HwConfig) -> SimError {
        let a = banded(&BandedConfig { n: 200, ..Default::default() });
        let x: Vec<f64> = (0..a.cols()).map(|i| 1.0 + (i % 7) as f64).collect();
        let mapping = LocalityMapping::default().map(&a, &cfg.shape);
        Machine::new(cfg).run(RunSpec::spmv(&a, &x, &mapping)).unwrap_err()
    }

    #[test]
    fn dropped_noc_packet_is_a_diagnosed_deadlock() {
        let mut cfg = HwConfig::tiny();
        cfg.faults.drop_noc_packet = Some(5);
        let err = run_err(cfg);
        assert!(err.is_hang(), "{err}");
        let SimError::Deadlock(d) = &err else { panic!("expected Deadlock, got {err}") };
        assert!(d.entries_left > 0 || d.y_left > 0, "{d}");
        assert!(d.suspect_vault.is_some(), "a lost packet must strand waiters somewhere: {d}");
    }

    #[test]
    fn stalled_vault_trips_the_stall_window_naming_the_vault() {
        let mut cfg = HwConfig::tiny();
        cfg.faults.stall_vault = Some((2, 500));
        cfg.watchdog.stall_window = Some(20_000);
        let err = run_err(cfg);
        assert!(err.is_hang(), "{err}");
        let SimError::NoProgress { window, diagnosis } = &err else {
            panic!("expected NoProgress, got {err}")
        };
        assert_eq!(*window, 20_000);
        assert_eq!(diagnosis.suspect_vault, Some(2), "{diagnosis}");
        assert!(err.to_string().contains("vault 2"), "{err}");
        assert!(
            diagnosis.pending_events > 0,
            "the bounced events keep the queue alive: {diagnosis}"
        );
        // The diagnosis carries the stalled vault's occupancy *time series*,
        // not just the abort-cycle snapshot.
        let history = diagnosis
            .history
            .iter()
            .find(|h| h.vault == 2)
            .expect("suspect vault must have an occupancy history");
        assert!(history.samples.len() > 1, "{diagnosis}");
        assert!(history.peak() > 0, "{diagnosis}");
        for w in history.samples.windows(2) {
            assert!(w[0].cycle <= w[1].cycle, "history must be in cycle order");
        }
        assert!(err.to_string().contains("occupancy history"), "{err}");
    }

    #[test]
    fn flipped_accumulator_update_fails_validation_loudly() {
        let mut cfg = HwConfig::tiny();
        cfg.faults.flip_accum_update = Some(0);
        let err = run_err(cfg);
        assert!(matches!(err, SimError::ValidationFailed { .. }), "{err}");
        assert!(!err.is_hang());
    }

    #[test]
    fn delayed_noc_packets_still_validate() {
        let a = banded(&BandedConfig { n: 200, ..Default::default() });
        let mut cfg = HwConfig::tiny();
        cfg.faults.delay_noc = Some((0, 50));
        let r = run(&a, cfg);
        assert!(r.validated, "a pure delay must not corrupt the result");
    }

    #[test]
    fn cycle_budget_exceeded_aborts_with_diagnosis() {
        let mut cfg = HwConfig::tiny();
        cfg.watchdog.max_cycles = Some(100);
        let err = run_err(cfg);
        let SimError::CycleBudgetExceeded { budget, diagnosis } = &err else {
            panic!("expected CycleBudgetExceeded, got {err}")
        };
        assert_eq!(*budget, 100);
        assert!(diagnosis.entries_left > 0, "{diagnosis}");
        assert!(err.is_hang());
    }

    #[test]
    fn injected_panic_fires_at_run_start() {
        let mut cfg = HwConfig::tiny();
        cfg.faults.panic_on_run = true;
        let a = banded(&BandedConfig { n: 64, ..Default::default() });
        let x = vec![1.0; a.cols()];
        let mapping = LocalityMapping::default().map(&a, &cfg.shape);
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = Machine::new(cfg).run(RunSpec::spmv(&a, &x, &mapping));
        }))
        .unwrap_err();
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("injected fault"), "{msg}");
    }

    #[test]
    fn watchdog_budgets_do_not_perturb_healthy_runs() {
        let a = banded(&BandedConfig { n: 200, ..Default::default() });
        let base = run(&a, HwConfig::tiny());
        let mut cfg = HwConfig::tiny();
        cfg.watchdog.max_cycles = Some(u64::MAX);
        cfg.watchdog.stall_window = Some(10_000);
        let r = run(&a, cfg);
        assert_eq!(r.cycles, base.cycles, "watchdog accounting must be timing-neutral");
    }

    fn count_nonempty_rows(a: &Csr) -> usize {
        (0..a.rows()).filter(|&i| a.row_nnz(i) > 0).count()
    }
}
