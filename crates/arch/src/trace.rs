//! Typed trace records for the machine's event loop.

use spacea_sim::Cycle;
use std::fmt;

/// One traced machine event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Cycle the event fired.
    pub cycle: Cycle,
    /// What happened.
    pub event: TraceEvent,
}

/// The machine-level event kinds (mirrors the internal event enum).
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum TraceEvent {
    /// A Product-PE control-unit scan step.
    PeStep {
        /// Linear PE slot.
        pe: u32,
    },
    /// A DRAM row arrived in a PE queue.
    RowLoaded {
        /// Linear PE slot.
        pe: u32,
        /// Per-PE DRAM row sequence id.
        row_id: u32,
    },
    /// Type I: an X request reached a vault controller.
    XRequestAtVault {
        /// Global vault id.
        vault: u32,
        /// Input-vector block index.
        block: u64,
    },
    /// Type II: an X response reached a vault controller.
    XResponseAtVault {
        /// Global vault id.
        vault: u32,
        /// Input-vector block index.
        block: u64,
    },
    /// An X request reached its owning vector bank.
    XRequestAtBank {
        /// Vector bank id.
        bank: u32,
        /// Input-vector block index.
        block: u64,
    },
    /// An X response filled a product bank group's L1 CAM.
    L1Fill {
        /// Global product bank-group id.
        bg: u32,
        /// Input-vector block index.
        block: u64,
    },
    /// Type III: a Y partial reached the vault owning its output element.
    YAtVault {
        /// Global vault id.
        vault: u32,
        /// Output row index.
        row: u32,
    },
    /// A Y partial reached its Accumulation-PE.
    YAtBank {
        /// Vector bank id.
        bank: u32,
        /// Output row index.
        row: u32,
    },
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>10}] ", self.cycle)?;
        match self.event {
            TraceEvent::PeStep { pe } => write!(f, "pe {pe}: scan step"),
            TraceEvent::RowLoaded { pe, row_id } => {
                write!(f, "pe {pe}: DRAM row {row_id} loaded into PE queue")
            }
            TraceEvent::XRequestAtVault { vault, block } => {
                write!(f, "vault {vault}: X request for block {block} (type I)")
            }
            TraceEvent::XResponseAtVault { vault, block } => {
                write!(f, "vault {vault}: X response for block {block} (type II)")
            }
            TraceEvent::XRequestAtBank { bank, block } => {
                write!(f, "vector bank {bank}: serving X block {block}")
            }
            TraceEvent::L1Fill { bg, block } => {
                write!(f, "bank group {bg}: L1 CAM filled with block {block}")
            }
            TraceEvent::YAtVault { vault, row } => {
                write!(f, "vault {vault}: Y partial for row {row} (type III)")
            }
            TraceEvent::YAtBank { bank, row } => {
                write!(f, "vector bank {bank}: accumulating Y[{row}]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_all_kinds() {
        let kinds = [
            TraceEvent::PeStep { pe: 1 },
            TraceEvent::RowLoaded { pe: 1, row_id: 2 },
            TraceEvent::XRequestAtVault { vault: 3, block: 4 },
            TraceEvent::XResponseAtVault { vault: 3, block: 4 },
            TraceEvent::XRequestAtBank { bank: 5, block: 4 },
            TraceEvent::L1Fill { bg: 6, block: 4 },
            TraceEvent::YAtVault { vault: 3, row: 7 },
            TraceEvent::YAtBank { bank: 5, row: 7 },
        ];
        for event in kinds {
            let r = TraceRecord { cycle: 42, event };
            let s = r.to_string();
            assert!(s.contains("42"), "{s}");
            assert!(s.len() > 15, "{s}");
        }
    }
}
