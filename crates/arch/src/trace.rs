//! Typed trace records for the machine's event loop.

use spacea_obs::Slice;
use spacea_sim::Cycle;
use std::collections::BTreeMap;
use std::fmt;

/// One traced machine event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Cycle the event fired.
    pub cycle: Cycle,
    /// What happened.
    pub event: TraceEvent,
}

/// The machine-level event kinds (mirrors the internal event enum).
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum TraceEvent {
    /// A Product-PE control-unit scan step.
    PeStep {
        /// Linear PE slot.
        pe: u32,
    },
    /// A DRAM row arrived in a PE queue.
    RowLoaded {
        /// Linear PE slot.
        pe: u32,
        /// Per-PE DRAM row sequence id.
        row_id: u32,
    },
    /// Type I: an X request reached a vault controller.
    XRequestAtVault {
        /// Global vault id.
        vault: u32,
        /// Input-vector block index.
        block: u64,
    },
    /// Type II: an X response reached a vault controller.
    XResponseAtVault {
        /// Global vault id.
        vault: u32,
        /// Input-vector block index.
        block: u64,
    },
    /// An X request reached its owning vector bank.
    XRequestAtBank {
        /// Vector bank id.
        bank: u32,
        /// Input-vector block index.
        block: u64,
    },
    /// An X response filled a product bank group's L1 CAM.
    L1Fill {
        /// Global product bank-group id.
        bg: u32,
        /// Input-vector block index.
        block: u64,
    },
    /// Type III: a Y partial reached the vault owning its output element.
    YAtVault {
        /// Global vault id.
        vault: u32,
        /// Output row index.
        row: u32,
    },
    /// A Y partial reached its Accumulation-PE.
    YAtBank {
        /// Vector bank id.
        bank: u32,
        /// Output row index.
        row: u32,
    },
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>10}] ", self.cycle)?;
        match self.event {
            TraceEvent::PeStep { pe } => write!(f, "pe {pe}: scan step"),
            TraceEvent::RowLoaded { pe, row_id } => {
                write!(f, "pe {pe}: DRAM row {row_id} loaded into PE queue")
            }
            TraceEvent::XRequestAtVault { vault, block } => {
                write!(f, "vault {vault}: X request for block {block} (type I)")
            }
            TraceEvent::XResponseAtVault { vault, block } => {
                write!(f, "vault {vault}: X response for block {block} (type II)")
            }
            TraceEvent::XRequestAtBank { bank, block } => {
                write!(f, "vector bank {bank}: serving X block {block}")
            }
            TraceEvent::L1Fill { bg, block } => {
                write!(f, "bank group {bg}: L1 CAM filled with block {block}")
            }
            TraceEvent::YAtVault { vault, row } => {
                write!(f, "vault {vault}: Y partial for row {row} (type III)")
            }
            TraceEvent::YAtBank { bank, row } => {
                write!(f, "vector bank {bank}: accumulating Y[{row}]")
            }
        }
    }
}

/// Pairs request/response trace records into timeline duration slices:
/// an X request at a vault opens a slice that its X response closes, and a
/// Y partial's vault arrival opens one that its bank arrival closes. Slices
/// land on the track of the vault that saw the request, sorted by start.
///
/// Unmatched opens (responses past the bounded trace prefix) are dropped —
/// a slice with no known end would render as running forever.
pub fn timeline_slices(records: &[TraceRecord]) -> Vec<Slice> {
    let mut open_x: BTreeMap<(u32, u64), Cycle> = BTreeMap::new();
    let mut open_y: BTreeMap<u32, (u32, Cycle)> = BTreeMap::new();
    let mut slices = Vec::new();
    for r in records {
        match r.event {
            TraceEvent::XRequestAtVault { vault, block } => {
                open_x.entry((vault, block)).or_insert(r.cycle);
            }
            TraceEvent::XResponseAtVault { vault, block } => {
                if let Some(start) = open_x.remove(&(vault, block)) {
                    slices.push(Slice {
                        vault: Some(vault),
                        name: format!("X block {block}"),
                        start,
                        end: r.cycle,
                    });
                }
            }
            TraceEvent::YAtVault { vault, row } => {
                open_y.entry(row).or_insert((vault, r.cycle));
            }
            TraceEvent::YAtBank { row, .. } => {
                if let Some((vault, start)) = open_y.remove(&row) {
                    slices.push(Slice {
                        vault: Some(vault),
                        name: format!("Y row {row}"),
                        start,
                        end: r.cycle,
                    });
                }
            }
            _ => {}
        }
    }
    slices.sort_by_key(|s| (s.start, s.vault));
    slices
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_response_pairs_become_slices() {
        let records = [
            TraceRecord { cycle: 10, event: TraceEvent::XRequestAtVault { vault: 1, block: 4 } },
            TraceRecord { cycle: 12, event: TraceEvent::YAtVault { vault: 0, row: 9 } },
            TraceRecord { cycle: 30, event: TraceEvent::XResponseAtVault { vault: 1, block: 4 } },
            TraceRecord { cycle: 35, event: TraceEvent::YAtBank { bank: 2, row: 9 } },
            // Unmatched request: no response in the bounded prefix.
            TraceRecord { cycle: 40, event: TraceEvent::XRequestAtVault { vault: 2, block: 7 } },
        ];
        let slices = timeline_slices(&records);
        assert_eq!(slices.len(), 2);
        assert_eq!(slices[0].name, "X block 4");
        assert_eq!((slices[0].start, slices[0].end), (10, 30));
        assert_eq!(slices[0].vault, Some(1));
        assert_eq!(slices[1].name, "Y row 9");
        assert_eq!((slices[1].start, slices[1].end), (12, 35));
        assert_eq!(slices[1].vault, Some(0));
    }

    #[test]
    fn display_is_nonempty_for_all_kinds() {
        let kinds = [
            TraceEvent::PeStep { pe: 1 },
            TraceEvent::RowLoaded { pe: 1, row_id: 2 },
            TraceEvent::XRequestAtVault { vault: 3, block: 4 },
            TraceEvent::XResponseAtVault { vault: 3, block: 4 },
            TraceEvent::XRequestAtBank { bank: 5, block: 4 },
            TraceEvent::L1Fill { bg: 6, block: 4 },
            TraceEvent::YAtVault { vault: 3, row: 7 },
            TraceEvent::YAtBank { bank: 5, row: 7 },
        ];
        for event in kinds {
            let r = TraceRecord { cycle: 42, event };
            let s = r.to_string();
            assert!(s.contains("42"), "{s}");
            assert!(s.len() > 15, "{s}");
        }
    }
}
