//! Data layout: where matrix rows, input-vector blocks and output elements
//! live in the machine (paper Section III-A).
//!
//! * The sparse matrix is distributed by the mapping: each Product-PE's rows
//!   are packed into its bank's DRAM rows, each DRAM row holding one 4-byte
//!   row-index header plus `(col, value)` pairs of a single matrix row.
//! * The input and output vectors are partitioned block-cyclically (32-byte
//!   blocks = 4 elements) over the vector banks on the bottom DRAM layer,
//!   with `X_j` and `Y_j` co-located so iterative SpMV needs no inter-run
//!   data movement.

use crate::config::HwConfig;

/// Physical coordinates of a Product-PE slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotId {
    /// Cube index.
    pub cube: usize,
    /// Vault index within the cube.
    pub vault: usize,
    /// Matrix layer (bank group within the vault), `0..product_bgs_per_vault`.
    pub layer: usize,
    /// Bank within the bank group.
    pub bank: usize,
}

impl SlotId {
    /// Global vault id (`cube * vaults_per_cube + vault`).
    pub fn global_vault(&self, cfg: &HwConfig) -> usize {
        self.cube * cfg.shape.vaults_per_cube + self.vault
    }

    /// Global product bank-group id.
    pub fn global_bank_group(&self, cfg: &HwConfig) -> usize {
        self.global_vault(cfg) * cfg.shape.product_bgs_per_vault + self.layer
    }
}

/// Address helpers mapping linear ids to machine coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct DataLayout {
    vaults_per_cube: usize,
    product_bgs_per_vault: usize,
    banks_per_bg: usize,
    vector_banks: usize,
    elems_per_block: usize,
}

impl DataLayout {
    /// Builds the layout for a configuration.
    pub fn new(cfg: &HwConfig) -> Self {
        DataLayout {
            vaults_per_cube: cfg.shape.vaults_per_cube,
            product_bgs_per_vault: cfg.shape.product_bgs_per_vault,
            banks_per_bg: cfg.shape.banks_per_bg,
            vector_banks: cfg.vector_banks(),
            elems_per_block: cfg.l1_cam.elements_per_way(),
        }
    }

    /// Vector elements per 32-byte block.
    pub fn elems_per_block(&self) -> usize {
        self.elems_per_block
    }

    /// Number of vector banks.
    pub fn vector_banks(&self) -> usize {
        self.vector_banks
    }

    /// The block index holding vector element `j`.
    pub fn block_of_element(&self, j: usize) -> u64 {
        (j / self.elems_per_block) as u64
    }

    /// First element index of `block`.
    pub fn first_element_of_block(&self, block: u64) -> usize {
        block as usize * self.elems_per_block
    }

    /// The vector bank holding `block` (block-cyclic distribution).
    pub fn home_bank_of_block(&self, block: u64) -> usize {
        (block % self.vector_banks as u64) as usize
    }

    /// The global vault that owns vector bank `bank`.
    ///
    /// Vector banks are enumerated `global_vault * banks_per_bg + bank_in_bg`.
    pub fn vault_of_vector_bank(&self, bank: usize) -> usize {
        bank / self.banks_per_bg
    }

    /// The global vault holding vector `block`.
    pub fn home_vault_of_block(&self, block: u64) -> usize {
        self.vault_of_vector_bank(self.home_bank_of_block(block))
    }

    /// The cube of a global vault id.
    pub fn cube_of_vault(&self, global_vault: usize) -> usize {
        global_vault / self.vaults_per_cube
    }

    /// The local vault index (within its cube) of a global vault id.
    pub fn local_vault(&self, global_vault: usize) -> usize {
        global_vault % self.vaults_per_cube
    }

    /// Decomposes a linear product-PE slot index into coordinates.
    ///
    /// Slots are linearized as
    /// `((cube · V + vault) · L + layer) · B + bank`, matching
    /// `spacea_mapping::Placement`.
    pub fn slot_from_linear(&self, slot: usize) -> SlotId {
        let bank = slot % self.banks_per_bg;
        let rest = slot / self.banks_per_bg;
        let layer = rest % self.product_bgs_per_vault;
        let rest = rest / self.product_bgs_per_vault;
        let vault = rest % self.vaults_per_cube;
        let cube = rest / self.vaults_per_cube;
        SlotId { cube, vault, layer, bank }
    }

    /// The DRAM row (within its vector bank) holding vector `block`.
    pub fn dram_row_of_block(&self, block: u64, row_bytes: usize) -> u64 {
        // Consecutive blocks resident in the same bank pack into rows.
        let blocks_per_row = (row_bytes / (self.elems_per_block * 8)).max(1) as u64;
        (block / self.vector_banks as u64) / blocks_per_row
    }

    /// The DRAM row (within its vector bank) holding output element `i`.
    pub fn dram_row_of_y(&self, i: usize, row_bytes: usize) -> u64 {
        self.dram_row_of_block(self.block_of_element(i), row_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> DataLayout {
        DataLayout::new(&HwConfig::tiny())
    }

    #[test]
    fn block_of_element_groups_by_four() {
        let l = layout();
        assert_eq!(l.block_of_element(0), 0);
        assert_eq!(l.block_of_element(3), 0);
        assert_eq!(l.block_of_element(4), 1);
        assert_eq!(l.first_element_of_block(2), 8);
    }

    #[test]
    fn blocks_cycle_over_banks() {
        let l = layout();
        // tiny: 8 vector banks.
        assert_eq!(l.home_bank_of_block(0), 0);
        assert_eq!(l.home_bank_of_block(7), 7);
        assert_eq!(l.home_bank_of_block(8), 0);
    }

    #[test]
    fn vector_bank_to_vault() {
        let l = layout();
        // 2 banks per bank group → banks 0,1 in vault 0; banks 6,7 in vault 3.
        assert_eq!(l.vault_of_vector_bank(0), 0);
        assert_eq!(l.vault_of_vector_bank(1), 0);
        assert_eq!(l.vault_of_vector_bank(7), 3);
        assert_eq!(l.home_vault_of_block(7), 3);
    }

    #[test]
    fn slot_linearization_roundtrip() {
        let cfg = HwConfig::tiny();
        let l = DataLayout::new(&cfg);
        let shape = cfg.shape;
        let mut linear = 0usize;
        for cube in 0..shape.cubes {
            for vault in 0..shape.vaults_per_cube {
                for layer in 0..shape.product_bgs_per_vault {
                    for bank in 0..shape.banks_per_bg {
                        let slot = l.slot_from_linear(linear);
                        assert_eq!(slot, SlotId { cube, vault, layer, bank });
                        linear += 1;
                    }
                }
            }
        }
    }

    #[test]
    fn global_ids() {
        let cfg = HwConfig::tiny();
        let slot = SlotId { cube: 0, vault: 2, layer: 1, bank: 0 };
        assert_eq!(slot.global_vault(&cfg), 2);
        assert_eq!(slot.global_bank_group(&cfg), 5);
    }

    #[test]
    fn cube_decomposition() {
        let cfg = HwConfig::with_shape(spacea_mapping::MachineShape {
            cubes: 2,
            vaults_per_cube: 4,
            product_bgs_per_vault: 2,
            banks_per_bg: 2,
        });
        let l = DataLayout::new(&cfg);
        assert_eq!(l.cube_of_vault(5), 1);
        assert_eq!(l.local_vault(5), 1);
    }

    #[test]
    fn y_rows_pack_consecutive_resident_blocks() {
        let l = layout();
        // 256 B row / 32 B block = 8 resident blocks per row.
        // Blocks 0, 8, 16… live in bank 0; the first 8 of them share row 0.
        assert_eq!(l.dram_row_of_block(0, 256), 0);
        assert_eq!(l.dram_row_of_block(8, 256), 0);
        assert_eq!(l.dram_row_of_block(8 * 8, 256), 1);
        assert_eq!(l.dram_row_of_y(0, 256), 0);
    }
}
