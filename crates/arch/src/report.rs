//! Simulation report: everything the evaluation section consumes.

use spacea_model::ActivitySummary;

/// The result of simulating one SpMV on a SpaceA machine.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Execution time in cycles (1 GHz clock).
    pub cycles: u64,
    /// Execution time in seconds.
    pub seconds: f64,
    /// Aggregated component activity (input to the energy model).
    pub activity: ActivitySummary,
    /// L1 CAM hit rate over all product bank groups (Figure 6(b)).
    pub l1_hit_rate: f64,
    /// L2 CAM hit rate over all vault controllers (Figure 6(c)).
    pub l2_hit_rate: f64,
    /// Bytes moved over TSVs (Figure 6(d)'s TSV traffic metric).
    pub tsv_bytes: u64,
    /// NoC traffic in bytes × hops (Figure 6(d)'s NoC traffic metric).
    pub noc_byte_hops: u64,
    /// Per-PE processed non-zero counts.
    pub pe_work: Vec<u64>,
    /// The paper's normalized workload: mean PE work / max PE work
    /// (Figure 6(a)).
    pub normalized_workload: f64,
    /// Hit rate of the Accumulation-PE update buffers over all vector banks.
    pub update_buffer_hit_rate: f64,
    /// Mean fraction of cycles Product-PEs spent actively scanning (the
    /// complement is idle/stalled time — the paper's Figure 8 discussion
    /// notes "DRAM banks and PEs are idle in most of the cycles" for the
    /// poorly-behaved matrices).
    pub pe_busy_fraction: f64,
    /// Mean busy fraction of the matrix banks.
    pub matrix_bank_busy_fraction: f64,
    /// Mean busy fraction of the vector banks.
    pub vector_bank_busy_fraction: f64,
    /// The simulated output vector.
    ///
    /// May be empty on reports rehydrated from the harness disk cache (the
    /// vector is large and nothing downstream of validation reads it); see
    /// `spacea-harness`.
    pub output: Vec<f64>,
    /// Whether the output matched the software SpMV oracle.
    pub validated: bool,
    /// Discrete events scheduled over the simulation (telemetry).
    pub events_scheduled: u64,
    /// Discrete events processed over the simulation (telemetry). Equals
    /// [`SimReport::events_scheduled`] on a completed run: the engine's
    /// counter invariant (`scheduled − processed == pending`) with an empty
    /// final queue.
    pub events_processed: u64,
}

/// The result of a fused multi-vector run ([`crate::RunSpec::spmm`]):
/// one simulated pass computing `Y = A · [x_0 … x_{k-1}]`.
#[derive(Debug, Clone, PartialEq)]
pub struct SpmmReport {
    /// Timing and activity of the single fused pass. Its `output` field is
    /// empty — the per-vector results live in [`SpmmReport::outputs`].
    pub report: SimReport,
    /// One output vector per input vector, in input order. Each is
    /// bitwise-identical to what a solo [`crate::RunSpec::spmv`] run returns for
    /// the same input vector alone.
    pub outputs: Vec<Vec<f64>>,
}

impl SpmmReport {
    /// The batch width `k` (number of fused vectors).
    pub fn batch(&self) -> usize {
        self.outputs.len()
    }

    /// Simulated cycles divided by the batch width: the per-request cost a
    /// batching service pays for this pass.
    pub fn cycles_per_vector(&self) -> f64 {
        if self.outputs.is_empty() {
            return 0.0;
        }
        self.report.cycles as f64 / self.outputs.len() as f64
    }
}

impl SimReport {
    /// Computes the normalized workload from a work vector.
    pub fn normalized_workload_of(work: &[u64]) -> f64 {
        let max = work.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return 1.0;
        }
        let mean = work.iter().sum::<u64>() as f64 / work.len() as f64;
        mean / max as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_workload_balanced() {
        assert!((SimReport::normalized_workload_of(&[5, 5, 5]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_workload_skewed() {
        // mean 4, max 8 → 0.5
        assert!((SimReport::normalized_workload_of(&[8, 4, 0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn normalized_workload_empty() {
        assert_eq!(SimReport::normalized_workload_of(&[]), 1.0);
        assert_eq!(SimReport::normalized_workload_of(&[0, 0]), 1.0);
    }
}
