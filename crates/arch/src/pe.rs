//! Product-PE state (paper Section III-B).
//!
//! A Product-PE streams DRAM rows of packed non-zeros from its local bank
//! into a cyclic PE queue (scratchpad), scans queue entries at one element
//! per `L_p` cycles, checks the input-vector value in the register file /
//! L1 CAM, issues non-blocking remote requests on misses, and accumulates
//! partial `Y_i` results that are flushed when a matrix row completes.
//!
//! These structures are passive: the event handlers in
//! [`machine`](crate::machine) drive them.

use std::collections::VecDeque;

/// One packed matrix DRAM row: a row-index header plus `(col, value)` pairs
/// of a single matrix row (Section III-B's alignment rule).
#[derive(Debug, Clone, PartialEq)]
pub struct DramRowSpec {
    /// The matrix row index all entries in this DRAM row belong to.
    pub matrix_row: u32,
    /// The packed `(column, value)` pairs (at most `nnz_per_dram_row`).
    pub entries: Vec<(u32, f64)>,
}

/// Packs the CSR rows assigned to one PE into DRAM rows.
///
/// Rows are laid out in assignment order; a matrix row longer than one DRAM
/// row spans several consecutive DRAM rows, each carrying the same header.
/// Empty matrix rows occupy no DRAM space.
pub fn pack_rows(
    csr: &spacea_matrix::Csr,
    assigned_rows: &[u32],
    nnz_per_dram_row: usize,
) -> Vec<DramRowSpec> {
    assert!(nnz_per_dram_row > 0, "DRAM row must hold at least one non-zero");
    let mut out = Vec::new();
    for &r in assigned_rows {
        let entries: Vec<(u32, f64)> = csr.row(r as usize).collect();
        for chunk in entries.chunks(nnz_per_dram_row) {
            out.push(DramRowSpec { matrix_row: r, entries: chunk.to_vec() });
        }
    }
    out
}

/// An entry travelling through the PE pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeEntry {
    /// Id of the loaded DRAM row this entry came from.
    pub row_id: u32,
    /// Matrix row index.
    pub matrix_row: u32,
    /// Column index (selects `X_col`).
    pub col: u32,
    /// The non-zero value `A_ij`.
    pub val: f64,
}

/// A DRAM row resident in the PE queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadedRow {
    /// Per-PE sequence id.
    pub id: u32,
    /// Entries not yet processed.
    pub remaining: usize,
}

/// Full state of one Product-PE.
#[derive(Debug, Clone, Default)]
pub struct ProductPe {
    /// Packed DRAM rows to stream, in order.
    pub dram_rows: Vec<DramRowSpec>,
    /// Next DRAM row index to load.
    pub next_load: usize,
    /// Whether a row load is outstanding at the bank.
    pub load_in_flight: bool,
    /// Rows resident in the PE queue (front pops first, paper's cyclic
    /// queue at DRAM-row granularity).
    pub queue: VecDeque<LoadedRow>,
    /// Entries loaded but not yet scanned.
    pub fresh: VecDeque<PeEntry>,
    /// Entries whose X value arrived (response-satisfied).
    pub ready: VecDeque<PeEntry>,
    /// Entries waiting on an outstanding X request.
    pub pending: usize,
    /// Matrix-row ids this PE owns (non-empty rows only), sorted for
    /// binary search, parallel to `row_remaining`. Built once at
    /// construction so the hot compute path indexes a dense table instead
    /// of growing a tree.
    pub row_ids: Vec<u32>,
    /// Non-zeros of each owned matrix row not yet multiplied, parallel to
    /// `row_ids`. A whole matrix row belongs to exactly one PE, so when a
    /// count reaches zero the machine flushes that row's dot product,
    /// computed in canonical CSR entry order — which makes the result
    /// independent of the arrival order of X responses and
    /// bitwise-identical to the software oracle.
    pub row_remaining: Vec<usize>,
    /// Whether a `PeStep` event is scheduled.
    pub step_scheduled: bool,
    /// Non-zeros processed so far (workload metric).
    pub work: u64,
    /// Control-unit scan steps executed (busy-time metric; each step
    /// occupies the PE for `L_p` cycles).
    pub steps: u64,
}

impl ProductPe {
    /// Creates a PE with its packed work list.
    pub fn new(dram_rows: Vec<DramRowSpec>) -> Self {
        // DRAM rows of one matrix row are consecutive (`pack_rows` packs
        // each assigned row before moving on), so one pass accumulates the
        // per-row non-zero totals; sorting then enables binary search.
        let mut table: Vec<(u32, usize)> = Vec::new();
        for spec in &dram_rows {
            match table.last_mut() {
                Some((row, n)) if *row == spec.matrix_row => *n += spec.entries.len(),
                _ => table.push((spec.matrix_row, spec.entries.len())),
            }
        }
        table.sort_unstable_by_key(|&(row, _)| row);
        let (row_ids, row_remaining) = table.into_iter().unzip();
        ProductPe { dram_rows, row_ids, row_remaining, ..Default::default() }
    }

    /// Mutable remaining-count slot for `matrix_row`, or `None` when this
    /// PE does not own the row.
    pub fn row_remaining_mut(&mut self, matrix_row: u32) -> Option<&mut usize> {
        let ix = self.row_ids.binary_search(&matrix_row).ok()?;
        self.row_remaining.get_mut(ix)
    }

    /// Total non-zeros this PE must process.
    pub fn total_nnz(&self) -> usize {
        self.dram_rows.iter().map(|r| r.entries.len()).sum()
    }

    /// Whether the PE has scan work available right now.
    pub fn has_work(&self) -> bool {
        !self.fresh.is_empty() || !self.ready.is_empty()
    }

    /// Whether everything is processed and streamed.
    pub fn finished(&self) -> bool {
        self.next_load >= self.dram_rows.len()
            && !self.load_in_flight
            && self.queue.is_empty()
            && self.fresh.is_empty()
            && self.ready.is_empty()
            && self.pending == 0
    }

    /// Marks one entry of loaded row `row_id` complete; pops finished rows
    /// from the queue front and returns how many were popped, or `None`
    /// when the row is not resident (a completion for a row the queue never
    /// loaded — the caller decides whether that is an invariant breach).
    pub fn complete_entry(&mut self, row_id: u32) -> Option<usize> {
        let row = self.queue.iter_mut().find(|r| r.id == row_id)?;
        debug_assert!(row.remaining > 0);
        row.remaining -= 1;
        self.work += 1;
        let mut popped = 0;
        while self.queue.front().is_some_and(|r| r.remaining == 0) {
            self.queue.pop_front();
            popped += 1;
        }
        Some(popped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spacea_matrix::Csr;

    fn csr() -> Csr {
        // row 0: 3 nnz; row 1: 0 nnz; row 2: 2 nnz
        Csr::from_parts(3, 5, vec![0, 3, 3, 5], vec![0, 1, 2, 3, 4], vec![1.0; 5]).unwrap()
    }

    #[test]
    fn pack_respects_row_capacity() {
        let rows = pack_rows(&csr(), &[0, 2], 2);
        // row 0 (3 nnz) → 2 DRAM rows; row 2 (2 nnz) → 1 DRAM row.
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].matrix_row, 0);
        assert_eq!(rows[0].entries.len(), 2);
        assert_eq!(rows[1].matrix_row, 0);
        assert_eq!(rows[1].entries.len(), 1);
        assert_eq!(rows[2].matrix_row, 2);
    }

    #[test]
    fn pack_skips_empty_rows() {
        let rows = pack_rows(&csr(), &[1], 4);
        assert!(rows.is_empty());
    }

    #[test]
    fn pack_preserves_values() {
        let rows = pack_rows(&csr(), &[2], 4);
        assert_eq!(rows[0].entries, vec![(3, 1.0), (4, 1.0)]);
    }

    #[test]
    fn total_nnz_sums_entries() {
        let pe = ProductPe::new(pack_rows(&csr(), &[0, 2], 2));
        assert_eq!(pe.total_nnz(), 5);
    }

    #[test]
    fn complete_entry_pops_front_rows_in_order() {
        let mut pe = ProductPe::default();
        pe.queue.push_back(LoadedRow { id: 0, remaining: 1 });
        pe.queue.push_back(LoadedRow { id: 1, remaining: 1 });
        // Completing the *second* row first must not pop anything.
        assert_eq!(pe.complete_entry(1), Some(0));
        assert_eq!(pe.queue.len(), 2);
        // Completing the front row pops both (cascade).
        assert_eq!(pe.complete_entry(0), Some(2));
        assert!(pe.queue.is_empty());
        assert_eq!(pe.work, 2);
        // A completion for a row the queue never loaded is reported, not
        // silently counted.
        assert_eq!(pe.complete_entry(7), None);
        assert_eq!(pe.work, 2);
    }

    #[test]
    fn finished_requires_everything_drained() {
        let mut pe = ProductPe::new(vec![]);
        assert!(pe.finished());
        pe.pending = 1;
        assert!(!pe.finished());
    }
}
