//! Accumulation-PE state (paper Section III-B, "Accumulation-PE").
//!
//! Bank groups on the vector die serve two purposes: answering `X_j`
//! requests (via their L1 CAM, then the bank) and accumulating partial `Y_i`
//! results. The PE-queue SRAM is repurposed as an *update buffer* caching
//! DRAM rows of the output vector; a full buffer writes back its LRU row.

/// Outcome of touching an output DRAM row in the update buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateOutcome {
    /// The row was resident.
    Hit,
    /// The row was loaded; an LRU victim may need writing back first.
    Miss {
        /// A dirty row that must be written back to the bank.
        writeback: Option<u64>,
    },
}

/// The update buffer: an LRU cache of output-vector DRAM rows.
#[derive(Debug, Clone)]
pub struct UpdateBuffer {
    rows: Vec<(u64, u64)>, // (dram_row, last_use); all resident rows are dirty
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

impl UpdateBuffer {
    /// Creates an empty buffer holding at most `capacity` DRAM rows.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "update buffer needs at least one row");
        UpdateBuffer {
            rows: Vec::with_capacity(capacity),
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// Touches `dram_row` for an accumulation; returns whether a bank load /
    /// writeback is needed. Every accumulated row is dirty, so every
    /// eviction writes back.
    pub fn touch(&mut self, dram_row: u64) -> UpdateOutcome {
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.rows.iter_mut().find(|(r, _)| *r == dram_row) {
            e.1 = tick;
            self.hits += 1;
            return UpdateOutcome::Hit;
        }
        self.misses += 1;
        if self.rows.len() < self.capacity {
            self.rows.push((dram_row, tick));
            return UpdateOutcome::Miss { writeback: None };
        }
        // The buffer is full (the non-full case returned above), so a
        // victim always exists; an empty buffer degrades to a plain insert.
        let Some(victim_ix) =
            self.rows.iter().enumerate().min_by_key(|(_, (_, lu))| *lu).map(|(i, _)| i)
        else {
            self.rows.push((dram_row, tick));
            return UpdateOutcome::Miss { writeback: None };
        };
        let victim = self.rows[victim_ix].0;
        self.rows[victim_ix] = (dram_row, tick);
        self.writebacks += 1;
        UpdateOutcome::Miss { writeback: Some(victim) }
    }

    /// Rows still resident (all dirty), for the final flush.
    pub fn resident_rows(&self) -> impl Iterator<Item = u64> + '_ {
        self.rows.iter().map(|&(r, _)| r)
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Evictions that required a writeback.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_on_resident_row() {
        let mut b = UpdateBuffer::new(2);
        assert_eq!(b.touch(5), UpdateOutcome::Miss { writeback: None });
        assert_eq!(b.touch(5), UpdateOutcome::Hit);
        assert_eq!(b.hits(), 1);
        assert_eq!(b.misses(), 1);
    }

    #[test]
    fn full_buffer_writes_back_lru() {
        let mut b = UpdateBuffer::new(2);
        b.touch(1);
        b.touch(2);
        b.touch(1); // refresh 1; LRU is 2
        assert_eq!(b.touch(3), UpdateOutcome::Miss { writeback: Some(2) });
        assert_eq!(b.writebacks(), 1);
    }

    #[test]
    fn resident_rows_for_final_flush() {
        let mut b = UpdateBuffer::new(4);
        b.touch(7);
        b.touch(9);
        let mut rows: Vec<u64> = b.resident_rows().collect();
        rows.sort_unstable();
        assert_eq!(rows, vec![7, 9]);
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn zero_capacity_panics() {
        UpdateBuffer::new(0);
    }
}
