//! Property tests of the multi-vector batching contract: a fused
//! SpMM pass over k vectors produces, for every vector, output
//! bitwise-identical to a solo SpMV run of that vector — independent of
//! batch composition and arrival order. This is what lets the serve
//! batcher fuse concurrent requests as pure scheduling, never semantics.

use proptest::prelude::*;
use spacea_arch::{HwConfig, Machine, RunSpec};
use spacea_mapping::MapKind;
use spacea_matrix::gen::{rmat, RmatConfig};
use spacea_matrix::Csr;

/// A deterministic request vector (distinct from the serve protocol's
/// generator on purpose — the contract must not depend on vector values).
fn vector(n: usize, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let mut z = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((i as u64).wrapping_mul(0xD1B5_4A32_D192_ED03));
            z = (z ^ (z >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            z ^= z >> 33;
            ((z % 2048) as f64 - 1024.0) / 256.0
        })
        .collect()
}

fn random_matrix(seed: u64) -> Csr {
    rmat(&RmatConfig { n: 96, edges: 600, a: 0.57, b: 0.19, c: 0.19, seed })
}

fn bits(y: &[f64]) -> Vec<u64> {
    y.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Every fused output is bitwise the solo SpMV result.
    #[test]
    fn fused_batch_matches_solo_runs_bitwise(
        seed in 0u64..1_000,
        k in 1usize..5,
        kind_tag in 0usize..2,
    ) {
        let kind = if kind_tag == 0 { MapKind::Naive } else { MapKind::Proposed };
        let a = random_matrix(seed);
        let hw = HwConfig::tiny();
        let mapping = kind.strategy().map(&a, &hw.shape);
        let machine = Machine::new(hw);
        let xs: Vec<Vec<f64>> = (0..k as u64).map(|s| vector(a.cols(), seed ^ s)).collect();

        let fused = machine.run(RunSpec::spmm(&a, &xs, &mapping)).expect("fused pass runs").into_spmm();
        prop_assert_eq!(fused.outputs.len(), k);
        prop_assert_eq!(fused.batch(), k);
        for (v, x) in xs.iter().enumerate() {
            let solo = machine.run(RunSpec::spmv(&a, x, &mapping)).expect("solo pass runs").into_report();
            prop_assert_eq!(
                bits(&fused.outputs[v]),
                bits(&solo.output),
                "vector {} of {} diverged under fusion", v, k
            );
            // And both agree bitwise with the reference CSR SpMV.
            prop_assert_eq!(bits(&fused.outputs[v]), bits(&a.spmv(x)));
        }
    }

    /// Rotating the batch permutes the outputs identically: arrival order
    /// never changes any individual result.
    #[test]
    fn batch_order_is_irrelevant(
        seed in 0u64..1_000,
        k in 2usize..5,
        rot in 1usize..4,
    ) {
        let a = random_matrix(seed);
        let hw = HwConfig::tiny();
        let mapping = MapKind::Proposed.strategy().map(&a, &hw.shape);
        let machine = Machine::new(hw);
        let xs: Vec<Vec<f64>> = (0..k as u64).map(|s| vector(a.cols(), seed ^ s)).collect();
        let rot = rot % k;
        let rotated: Vec<Vec<f64>> =
            (0..k).map(|v| xs[(v + rot) % k].clone()).collect();

        let base = machine.run(RunSpec::spmm(&a, &xs, &mapping)).expect("base pass runs").into_spmm();
        let perm =
            machine.run(RunSpec::spmm(&a, &rotated, &mapping)).expect("rotated pass runs").into_spmm();
        for v in 0..k {
            prop_assert_eq!(
                bits(&perm.outputs[v]),
                bits(&base.outputs[(v + rot) % k]),
                "rotation by {} changed vector {}", rot, v
            );
        }
    }
}
