//! Table III: graph analytics case study — PageRank and SSSP on Wiki- and
//! LiveJournal-shaped graphs, SpaceA vs the CPU baseline, compared against
//! the published Tesseract and GraphP speedups.

use super::context::{ExpConfig, ExpOutput, MapKind, SuiteCache};
use crate::table::{fmt, Table};
use spacea_gpu::cpu::model_full_sweeps;
use spacea_graph::workloads::CaseStudyGraph;
use spacea_graph::{pagerank, sssp, PageRankConfig};
use spacea_harness::{GraphOperand, JobSpec, MatrixSource};
use spacea_model::reference::{claimed_speedups, GraphDataset, GraphWorkload};

/// One Table III row: the measured SpaceA speedup next to published numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaseStudyRow {
    /// Workload (PR / SSSP).
    pub workload: GraphWorkload,
    /// Dataset (WK / LJ).
    pub dataset: GraphDataset,
    /// Tesseract's claimed speedup over CPU.
    pub tesseract: f64,
    /// GraphP's claimed speedup over CPU.
    pub graphp: f64,
    /// SpaceA's speedup as published in the paper.
    pub spacea_paper: f64,
    /// SpaceA's speedup measured by this reproduction.
    pub spacea_measured: f64,
}

fn operand_source(
    cache: &SuiteCache,
    graph: CaseStudyGraph,
    operand: GraphOperand,
) -> MatrixSource {
    MatrixSource::Graph { graph, scale: cache.cfg.graph_scale, operand }
}

/// The case-study simulation jobs (one per graph × SpMV operand). The
/// per-iteration SpMV time uses the proposed mapping, computed once —
/// offline preprocessing, amortized over all iterations, exactly as the
/// paper's execution model prescribes.
pub fn jobs(cfg: &ExpConfig) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for graph in [CaseStudyGraph::Wiki, CaseStudyGraph::LiveJournal] {
        for operand in [GraphOperand::PageRank, GraphOperand::Transpose] {
            jobs.push(JobSpec::Sim {
                source: MatrixSource::Graph { graph, scale: cfg.graph_scale, operand },
                kind: MapKind::Proposed,
                hw: cfg.hw.clone(),
                energy: cfg.energy,
            });
        }
    }
    jobs
}

/// Runs the full case study and returns the rows.
pub fn rows(cache: &mut SuiteCache) -> Vec<CaseStudyRow> {
    let cpu = cache.cfg.cpu_spec();
    let mut out = Vec::new();
    for (graph, dataset) in [
        (CaseStudyGraph::Wiki, GraphDataset::Wiki),
        (CaseStudyGraph::LiveJournal, GraphDataset::LiveJournal),
    ] {
        let a = cache.matrix_of(&operand_source(cache, graph, GraphOperand::Adjacency));

        // PageRank: every iteration is one full SpMV on both platforms.
        let pr = pagerank(&a, &PageRankConfig::default());
        let pr_src = operand_source(cache, graph, GraphOperand::PageRank);
        let spacea_iter = cache.sim_source(&pr_src, MapKind::Proposed).seconds;
        let spacea_pr = spacea_iter * pr.iterations as f64;
        let cpu_pr = model_full_sweeps(&cpu, &a, pr.iterations).time_s;
        out.push(make_row(GraphWorkload::PageRank, dataset, cpu_pr / spacea_pr));

        // SSSP: both platforms run full Bellman-Ford (min-plus SpMV)
        // sweeps, as the paper's SpMV formulation prescribes; the CPU's
        // relaxation sweeps run at its lower irregular-access efficiency.
        let ss = sssp(&a, 0);
        let at_src = operand_source(cache, graph, GraphOperand::Transpose);
        let spacea_sweep = cache.sim_source(&at_src, MapKind::Proposed).seconds;
        let spacea_ss = spacea_sweep * ss.iterations as f64;
        let cpu_sssp_spec =
            spacea_gpu::spec::Dgx1CpuSpec { bw_efficiency: cpu.sssp_efficiency, ..cpu };
        let cpu_ss = model_full_sweeps(&cpu_sssp_spec, &a, ss.iterations).time_s;
        out.push(make_row(GraphWorkload::Sssp, dataset, cpu_ss / spacea_ss));
    }
    out
}

fn make_row(workload: GraphWorkload, dataset: GraphDataset, measured: f64) -> CaseStudyRow {
    let c = claimed_speedups(workload, dataset);
    CaseStudyRow {
        workload,
        dataset,
        tesseract: c.tesseract,
        graphp: c.graphp,
        spacea_paper: c.spacea_paper,
        spacea_measured: measured,
    }
}

/// Regenerates Table III.
pub fn run(cache: &mut SuiteCache) -> ExpOutput {
    let rows = rows(cache);
    let mut table = Table::new(
        "Table III: speedup over CPU for PR and SSSP (WK, LJ)",
        &["Workload", "Tesseract", "GraphP", "SpaceA (paper)", "SpaceA (measured)"],
    );
    let mut headline = Vec::new();
    for r in &rows {
        table.push_row(vec![
            format!("{} + {}", r.workload, r.dataset),
            fmt(r.tesseract, 2),
            fmt(r.graphp, 2),
            fmt(r.spacea_paper, 2),
            fmt(r.spacea_measured, 2),
        ]);
        headline.push((
            format!("{} + {} speedup", r.workload, r.dataset),
            r.spacea_paper,
            r.spacea_measured,
        ));
    }
    table.push_note(
        "Tesseract / GraphP columns are their papers' claimed speedups, as in the paper",
    );
    table.push_note(format!(
        "graphs are R-MAT stand-ins scaled 1/{}; CPU baseline is an iso-scaled bandwidth model",
        cache.cfg.graph_scale
    ));
    ExpOutput { id: "table3", table, extra_tables: vec![], headline }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::context::ExpConfig;

    #[test]
    fn spacea_beats_prior_accelerators() {
        let mut cache = SuiteCache::new(ExpConfig::quick());
        let rows = rows(&mut cache);
        assert_eq!(rows.len(), 4);
        // At the miniature quick() scale the machine loses proportionally
        // more to fixed latencies than at harness scale, so the unit test
        // checks the directional claim against Tesseract; the full-scale
        // GraphP comparison is recorded by the table3 harness binary.
        for r in &rows {
            assert!(
                r.spacea_measured > r.tesseract,
                "{} + {}: measured {} must beat Tesseract's {}",
                r.workload,
                r.dataset,
                r.spacea_measured,
                r.tesseract
            );
        }
    }
}
