//! The scenario matrix: every backend × storage format × stream
//! partitioning cell on a structural and a power-law matrix.
//!
//! This is the cross-architecture study the Backend trait exists for: the
//! same operand, streamed in CSR / COO / BCSR / SELL-C-σ layouts, through
//! the SpaceA machine, the GPU and CPU roofline baselines, and the
//! Serpens-style HBM accelerator (row-split and nnz-split shards). Every
//! cell's output is bitwise-verified against `Csr::spmv` before it is
//! cached, so the table can assert correctness next to cost.

use super::context::{ExpConfig, ExpOutput, SuiteCache};
use crate::table::{fmt, Table};
use spacea_backend::{BackendKind, Partition};
use spacea_harness::JobSpec;
use spacea_matrix::formats::FormatKind;
use spacea_matrix::suite;

/// The matrices the scenario grid runs on: banded `bar7` (structural,
/// id 1) and power-law `Stanford` (id 13).
pub const SCENARIO_IDS: [u8; 2] = [1, 13];

/// Every cell of the grid, in rendering order: the three partition-blind
/// backends (SpaceA, GPU, CPU) on row-split only, then the HBM backend on
/// both partitionings.
fn cells() -> Vec<(BackendKind, FormatKind, Partition)> {
    let mut cells = Vec::new();
    for backend in [BackendKind::Spacea, BackendKind::Gpu, BackendKind::Cpu] {
        for &format in FormatKind::ALL.iter() {
            cells.push((backend, format, Partition::RowSplit));
        }
    }
    for &partition in Partition::ALL.iter() {
        for &format in FormatKind::ALL.iter() {
            cells.push((BackendKind::Hbm, format, partition));
        }
    }
    cells
}

/// The scenario jobs this experiment consumes (one per grid cell).
pub fn jobs(cfg: &ExpConfig) -> Vec<JobSpec> {
    SCENARIO_IDS
        .iter()
        .flat_map(|&id| cells().into_iter().map(move |(b, f, p)| (id, b, f, p)))
        .map(|(id, b, f, p)| cfg.scenario_job(id, b, f, p))
        .collect()
}

/// Renders the scenario-matrix table.
pub fn run(cache: &mut SuiteCache) -> ExpOutput {
    let mut table = Table::new(
        "Scenario matrix: backend x format x partitioning (bitwise-verified)",
        &[
            "ID", "Matrix", "Backend", "Format", "Part", "Cycles", "us", "B/nnz", "GB/s", "Stalls",
            "Bitwise",
        ],
    );
    // The headline comparisons: SELL's C-way interleaving should erase the
    // HBM reorder stalls CSR pays on the power-law matrix.
    let mut hbm_csr_stalls = 0u64;
    let mut hbm_sell_stalls = 0u64;
    for &id in &SCENARIO_IDS {
        let name = suite::entry_by_id(id).map(|e| e.name).unwrap_or("?");
        for (backend, format, partition) in cells() {
            let rec = cache.scenario(id, backend, format, partition);
            if id == SCENARIO_IDS[1] && backend == BackendKind::Hbm {
                match format {
                    FormatKind::Csr => hbm_csr_stalls += rec.reorder_stalls,
                    FormatKind::Sell => hbm_sell_stalls += rec.reorder_stalls,
                    _ => {}
                }
            }
            table.push_row(vec![
                id.to_string(),
                name.to_string(),
                backend.label().to_string(),
                format.label().to_string(),
                partition.label().to_string(),
                rec.cycles.to_string(),
                fmt(rec.time_s * 1e6, 2),
                fmt(rec.bytes_per_nnz, 1),
                fmt(rec.effective_bw / 1e9, 2),
                rec.reorder_stalls.to_string(),
                if rec.bitwise_ok { "ok".into() } else { "FAIL".into() },
            ]);
        }
    }
    table.push_note(format!(
        "HBM reorder stalls on the power-law matrix: csr {hbm_csr_stalls}, sell {hbm_sell_stalls} \
         (SELL-C-\u{3c3}'s C-way row interleaving spaces accumulator reuse past the window)"
    ));
    table.push_note(
        "every cell's output is bitwise-equal to Csr::spmv (a mismatch fails the job and is \
         never cached)"
            .to_string(),
    );
    ExpOutput { id: "formats", table, extra_tables: vec![], headline: vec![] }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::context::ExpConfig;

    #[test]
    fn grid_covers_every_backend_and_format() {
        let cfg = ExpConfig::quick();
        let jobs = jobs(&cfg);
        // 2 matrices x (3 backends x 4 formats x 1 + 1 backend x 4 x 2).
        assert_eq!(jobs.len(), 2 * (3 * 4 + 4 * 2));
        let keys: std::collections::HashSet<_> = jobs.iter().map(|j| j.key()).collect();
        assert_eq!(keys.len(), jobs.len(), "cells must key distinctly");
    }

    #[test]
    fn table_renders_with_all_cells_verified() {
        let mut cache = SuiteCache::new(ExpConfig::quick());
        let out = run(&mut cache);
        assert_eq!(out.table.rows.len(), 2 * (3 * 4 + 4 * 2));
        assert!(out.table.rows.iter().all(|r| r.last().map(String::as_str) == Some("ok")));
        // The HBM backend must produce cycle counts distinct from the
        // SpaceA machine and the GPU model on the same cell.
        let cycles_of = |backend: &str| -> Vec<&String> {
            out.table
                .rows
                .iter()
                .filter(|r| r[2] == backend && r[3] == "csr" && r[4] == "row" && r[0] == "1")
                .map(|r| &r[5])
                .collect()
        };
        let (spacea, gpu, hbm) = (cycles_of("spacea"), cycles_of("gpu"), cycles_of("hbm"));
        assert_eq!((spacea.len(), gpu.len(), hbm.len()), (1, 1, 1));
        assert_ne!(spacea[0], hbm[0], "HBM model must not mirror the SpaceA machine");
        assert_ne!(gpu[0], hbm[0], "HBM model must not mirror the GPU baseline");
    }

    #[test]
    fn sell_beats_csr_on_hbm_stalls_for_the_power_law_matrix() {
        let mut cache = SuiteCache::new(ExpConfig::quick());
        let csr = cache.scenario(13, BackendKind::Hbm, FormatKind::Csr, Partition::NnzSplit);
        let sell = cache.scenario(13, BackendKind::Hbm, FormatKind::Sell, Partition::NnzSplit);
        assert!(
            sell.reorder_stalls < csr.reorder_stalls,
            "sell {} vs csr {}",
            sell.reorder_stalls,
            csr.reorder_stalls
        );
    }
}
