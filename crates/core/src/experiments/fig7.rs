//! Figure 7: sensitivity of performance to the L1/L2 CAM geometry, and the
//! L2 CAM performance/area trade-off.

use super::context::{ExpConfig, ExpOutput, MapKind, SuiteCache};
use crate::table::{fmt, geo_mean, Table};
use spacea_arch::HwConfig;
use spacea_harness::JobSpec;
use spacea_matrix::suite;
use spacea_model::AreaModel;

/// Sweep points per panel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fig7Sweep {
    /// Panel (a): L1 set counts.
    pub l1_sets: Vec<usize>,
    /// Panel (b): L1 way counts.
    pub l1_ways: Vec<usize>,
    /// Panel (c): L2 set counts.
    pub l2_sets: Vec<usize>,
    /// Panel (d): L2 way counts.
    pub l2_ways: Vec<usize>,
    /// Panel (e): L2 set counts for the area/performance trade-off.
    pub tradeoff_l2_sets: Vec<usize>,
}

impl Default for Fig7Sweep {
    /// The paper's sweep axes.
    fn default() -> Self {
        Fig7Sweep {
            l1_sets: vec![32, 128, 1024, 4096],
            l1_ways: vec![1, 2, 4, 8, 16, 32],
            l2_sets: vec![32, 1024, 2048, 4096, 8192],
            l2_ways: vec![1, 2, 4, 8, 16],
            tradeoff_l2_sets: vec![256, 1024, 2048, 4096, 8192],
        }
    }
}

impl Fig7Sweep {
    /// A minimal sweep for tests.
    pub fn quick() -> Self {
        Fig7Sweep {
            l1_sets: vec![32, 128],
            l1_ways: vec![1, 4],
            l2_sets: vec![32, 2048],
            l2_ways: vec![1, 4],
            tradeoff_l2_sets: vec![256, 2048],
        }
    }
}

/// The jobs for the default sweep.
pub fn jobs(cfg: &ExpConfig) -> Vec<JobSpec> {
    jobs_with(cfg, &Fig7Sweep::default())
}

/// The jobs a custom sweep consumes: each panel's tweaked machine simulated
/// for every matrix, plus the GPU baselines the speedups divide by.
pub fn jobs_with(cfg: &ExpConfig, sweep: &Fig7Sweep) -> Vec<JobSpec> {
    let mut configs: Vec<(MapKind, HwConfig)> = Vec::new();
    let tweaked = |kind: MapKind, f: &dyn Fn(&mut HwConfig)| {
        let mut hw = cfg.hw.clone();
        f(&mut hw);
        (kind, hw)
    };
    for &sets in &sweep.l1_sets {
        configs.push(tweaked(MapKind::Proposed, &|hw| hw.l1_cam.sets = sets));
    }
    for &ways in &sweep.l1_ways {
        configs.push(tweaked(MapKind::Proposed, &|hw| hw.l1_cam.ways = ways));
    }
    for &sets in &sweep.l2_sets {
        configs.push(tweaked(MapKind::Proposed, &|hw| hw.l2_cam.sets = sets));
    }
    for &ways in &sweep.l2_ways {
        configs.push(tweaked(MapKind::Proposed, &|hw| hw.l2_cam.ways = ways));
    }
    for kind in [MapKind::Naive, MapKind::Proposed] {
        for &sets in &sweep.tradeoff_l2_sets {
            configs.push(tweaked(kind, &|hw| hw.l2_cam.sets = sets));
        }
    }
    let mut jobs = Vec::new();
    for e in suite::entries() {
        jobs.push(cfg.gpu_job(e.id));
        for (kind, hw) in &configs {
            jobs.push(cfg.sim_job_with(e.id, *kind, hw));
        }
    }
    jobs
}

/// Geo-mean speedup over the GPU baseline for a modified configuration.
fn mean_speedup(
    cache: &mut SuiteCache,
    kind: MapKind,
    tweak: impl Fn(&mut spacea_arch::HwConfig),
) -> f64 {
    let mut hw = cache.cfg.hw.clone();
    tweak(&mut hw);
    let ids: Vec<u8> = cache.entries().iter().map(|e| e.id).collect();
    let mut speedups = Vec::new();
    for id in ids {
        let gpu = cache.gpu(id);
        let sim = cache.sim_with(id, kind, &hw);
        speedups.push(gpu.time_s / sim.seconds);
    }
    geo_mean(&speedups)
}

/// Regenerates Figure 7 with the default sweep.
pub fn run(cache: &mut SuiteCache) -> ExpOutput {
    run_with(cache, &Fig7Sweep::default())
}

/// Regenerates Figure 7 with a custom sweep.
pub fn run_with(cache: &mut SuiteCache, sweep: &Fig7Sweep) -> ExpOutput {
    let mut a =
        Table::new("Figure 7(a): speedup vs number of L1 sets", &["L1 sets", "Geo-mean speedup"]);
    for &sets in &sweep.l1_sets {
        let s = mean_speedup(cache, MapKind::Proposed, |hw| hw.l1_cam.sets = sets);
        a.push_row(vec![sets.to_string(), fmt(s, 2)]);
    }

    let mut b =
        Table::new("Figure 7(b): speedup vs number of L1 ways", &["L1 ways", "Geo-mean speedup"]);
    for &ways in &sweep.l1_ways {
        let s = mean_speedup(cache, MapKind::Proposed, |hw| hw.l1_cam.ways = ways);
        b.push_row(vec![ways.to_string(), fmt(s, 2)]);
    }

    let mut c =
        Table::new("Figure 7(c): speedup vs number of L2 sets", &["L2 sets", "Geo-mean speedup"]);
    let mut c_speedups = Vec::new();
    for &sets in &sweep.l2_sets {
        let s = mean_speedup(cache, MapKind::Proposed, |hw| hw.l2_cam.sets = sets);
        c.push_row(vec![sets.to_string(), fmt(s, 2)]);
        c_speedups.push((sets, s));
    }

    let mut d =
        Table::new("Figure 7(d): speedup vs number of L2 ways", &["L2 ways", "Geo-mean speedup"]);
    for &ways in &sweep.l2_ways {
        let s = mean_speedup(cache, MapKind::Proposed, |hw| hw.l2_cam.ways = ways);
        d.push_row(vec![ways.to_string(), fmt(s, 2)]);
    }

    let mut e = Table::new(
        "Figure 7(e): performance vs L2 CAM area trade-off",
        &["Mapping", "L2 sets", "Area (mm^2)", "Geo-mean speedup"],
    );
    let model = AreaModel;
    for kind in [MapKind::Naive, MapKind::Proposed] {
        for &sets in &sweep.tradeoff_l2_sets {
            let s = mean_speedup(cache, kind, |hw| hw.l2_cam.sets = sets);
            let area = model.cam_area_mm2(sets, cache.cfg.hw.l2_cam.ways, 32);
            e.push_row(vec![kind.label().into(), sets.to_string(), fmt(area, 4), fmt(s, 2)]);
        }
    }
    e.push_note(
        "paper: naive with a 0.76 mm^2 L2 CAM achieves only 68.61% of proposed with 0.09 mm^2",
    );

    let mut main = Table::new("Figure 7: CAM sensitivity summary", &["Panel", "Observation"]);
    main.push_row(vec!["(a)/(b)".into(), "performance is not sensitive to L1 CAM size".into()]);
    main.push_row(vec![
        "(c)/(d)".into(),
        "performance is moderately sensitive to L2 CAM size".into(),
    ]);
    main.push_row(vec![
        "(e)".into(),
        "proposed mapping needs less L2 area for more speedup".into(),
    ]);

    ExpOutput {
        id: "fig7",
        table: main,
        extra_tables: vec![a, b, c, d, e],
        headline: vec![(
            "L2-sets sweep speedup range (max/min)".into(),
            15.0 / 11.0, // the paper's "from 11x to 15x" spread
            {
                let max = c_speedups.iter().map(|&(_, s)| s).fold(f64::MIN, f64::max);
                let min = c_speedups.iter().map(|&(_, s)| s).fold(f64::MAX, f64::min);
                max / min
            },
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::context::ExpConfig;

    #[test]
    fn sweep_produces_all_panels() {
        let mut cache = SuiteCache::new(ExpConfig::quick());
        let out = run_with(&mut cache, &Fig7Sweep::quick());
        assert_eq!(out.extra_tables.len(), 5);
        assert_eq!(out.extra_tables[0].rows.len(), 2);
        assert_eq!(out.extra_tables[4].rows.len(), 4); // 2 mappings × 2 sizes
    }

    #[test]
    fn bigger_l2_does_not_hurt() {
        let mut cache = SuiteCache::new(ExpConfig::quick());
        let small = mean_speedup(&mut cache, MapKind::Proposed, |hw| hw.l2_cam.sets = 32);
        let big = mean_speedup(&mut cache, MapKind::Proposed, |hw| hw.l2_cam.sets = 2048);
        assert!(big >= small * 0.95, "bigger L2 ({big}) should not lose to small ({small})");
    }
}
