//! Table I: the evaluation matrix suite — published statistics vs the scaled
//! synthetic stand-ins actually simulated.

use super::context::{ExpOutput, SuiteCache};
use crate::table::{fmt, Table};

/// Regenerates Table I.
pub fn run(cache: &mut SuiteCache) -> ExpOutput {
    let mut table = Table::new(
        "Table I: sparse matrix suite (published vs scaled synthetic)",
        &[
            "ID",
            "Matrix",
            "Domain",
            "n (paper)",
            "nnz (paper)",
            "mu (paper)",
            "sigma (paper)",
            "n (gen)",
            "nnz (gen)",
            "mu (gen)",
            "sigma (gen)",
        ],
    );
    let mut headline = Vec::new();
    for entry in cache.entries().to_vec() {
        let a = cache.matrix(entry.id);
        let s = a.stats();
        table.push_row(vec![
            entry.id.to_string(),
            entry.name.to_string(),
            entry.domain.to_string(),
            entry.published.n.to_string(),
            entry.published.nnz.to_string(),
            fmt(entry.published.mean, 2),
            fmt(entry.published.stddev, 2),
            s.rows.to_string(),
            s.nnz.to_string(),
            fmt(s.mean_row_nnz, 2),
            fmt(s.stddev_row_nnz, 2),
        ]);
        headline.push((format!("{} mu", entry.name), entry.published.mean, s.mean_row_nnz));
    }
    table.push_note(format!(
        "matrices scaled 1/{} in rows and nnz; mu and the sigma/mu shape are preserved (DESIGN.md section 4)",
        cache.cfg.scale
    ));
    ExpOutput { id: "table1", table, extra_tables: vec![], headline }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::context::ExpConfig;

    #[test]
    fn fifteen_rows() {
        let mut cache = SuiteCache::new(ExpConfig::quick());
        let out = run(&mut cache);
        assert_eq!(out.table.rows.len(), 15);
        assert_eq!(out.id, "table1");
    }

    #[test]
    fn generated_mu_tracks_published_for_structural() {
        let mut cache = SuiteCache::new(ExpConfig::quick());
        let out = run(&mut cache);
        // Structural rows (not 12-14) should track mu within 40% whenever the
        // scaled matrix is big enough for the band not to clip at the edges.
        for (row, (name, paper, measured)) in out.table.rows.iter().zip(&out.headline) {
            if name.contains("soc-sign") || name.contains("Stanford") || name.contains("webbase") {
                continue;
            }
            let gen_rows: usize = row[7].parse().expect("generated n column");
            if gen_rows < 4 * *paper as usize {
                continue; // band clipped by the matrix edge at this scale
            }
            let rel = (measured - paper).abs() / paper;
            assert!(rel < 0.4, "{name}: paper {paper} vs measured {measured}");
        }
    }
}
