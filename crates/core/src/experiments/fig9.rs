//! Figure 9: sensitivity of performance to the TSV transfer latency.

use super::context::{ExpConfig, ExpOutput, MapKind, SuiteCache};
use crate::table::{fmt, geo_mean, Table};
use spacea_harness::JobSpec;
use spacea_matrix::suite;

/// The paper's swept TSV latencies, in cycles.
pub const LATENCIES: [u64; 5] = [1, 2, 4, 8, 16];

/// The jobs this figure consumes: every matrix at every swept TSV latency.
pub fn jobs(cfg: &ExpConfig) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for e in suite::entries() {
        for &lat in &LATENCIES {
            let mut hw = cfg.hw.clone();
            hw.tsv_latency = lat;
            jobs.push(cfg.sim_job_with(e.id, MapKind::Proposed, &hw));
        }
    }
    jobs
}

/// Regenerates the Figure 9 series: execution time at each TSV latency,
/// normalized to latency = 1.
pub fn run(cache: &mut SuiteCache) -> ExpOutput {
    let mut headers: Vec<String> = vec!["ID".into(), "Matrix".into()];
    headers.extend(LATENCIES.iter().map(|l| format!("Latency={l}")));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new("Figure 9: normalized execution time vs TSV latency", &headers_ref);

    let ids: Vec<(u8, String)> =
        cache.entries().iter().map(|e| (e.id, e.name.to_string())).collect();
    let mut per_latency: Vec<Vec<f64>> = vec![Vec::new(); LATENCIES.len()];
    for (id, name) in ids {
        let mut cycles = Vec::new();
        for &lat in &LATENCIES {
            let mut hw = cache.cfg.hw.clone();
            hw.tsv_latency = lat;
            cycles.push(cache.sim_with(id, MapKind::Proposed, &hw).cycles as f64);
        }
        let base = cycles[0];
        let mut row = vec![id.to_string(), name];
        for (k, c) in cycles.iter().enumerate() {
            let slowdown = c / base;
            row.push(fmt(slowdown, 3));
            per_latency[k].push(slowdown);
        }
        table.push_row(row);
    }
    let mut mean_row = vec!["-".to_string(), "Geo. Mean".to_string()];
    let mut means = Vec::new();
    for v in &per_latency {
        let m = geo_mean(v);
        means.push(m);
        mean_row.push(fmt(m, 3));
    }
    table.push_row(mean_row);
    table.push_note(
        "paper: latency 1 vs 2 nearly identical; 4 cycles ~1.3x mean slowdown; 16 cycles ~2x",
    );

    ExpOutput {
        id: "fig9",
        table,
        extra_tables: vec![],
        headline: vec![
            ("mean slowdown at TSV latency 4".into(), 1.3, means[2]),
            ("mean slowdown at TSV latency 16".into(), 2.0, means[4]),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::context::ExpConfig;

    #[test]
    fn slowdown_monotone_in_latency() {
        let mut cache = SuiteCache::new(ExpConfig::quick());
        let out = run(&mut cache);
        // The geo-mean row is last; slowdowns must not decrease with latency.
        let mean_row = out.table.rows.last().unwrap();
        let values: Vec<f64> = mean_row[2..].iter().map(|s| s.parse().unwrap()).collect();
        for w in values.windows(2) {
            assert!(w[1] >= w[0] * 0.999, "slowdown must be monotone: {values:?}");
        }
        assert!((values[0] - 1.0).abs() < 1e-9, "baseline normalizes to 1");
        assert!(*values.last().unwrap() > 1.0, "16-cycle TSV must cost something");
    }
}
