//! Shared experiment configuration and memoized computation cache.

use crate::table::Table;
use spacea_arch::{HwConfig, Machine, SimReport};
use spacea_gpu::spec::{Dgx1CpuSpec, TitanXpSpec};
use spacea_gpu::{simulate_csrmv, GpuRun};
use spacea_mapping::{
    LocalityMapping, MachineShape, Mapping, MappingStrategy, NaiveMapping,
};
use spacea_matrix::suite::{self, SuiteEntry};
use spacea_matrix::Csr;
use spacea_model::energy::StaticConfig;
use spacea_model::{EnergyBreakdown, EnergyParams};
use std::collections::HashMap;
use std::rc::Rc;

/// Which mapping a cached simulation used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MapKind {
    /// Random row assignment (Section V-B baseline).
    Naive,
    /// The proposed two-phase mapping.
    Proposed,
}

impl MapKind {
    /// Display label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            MapKind::Naive => "naive",
            MapKind::Proposed => "proposed",
        }
    }
}

/// Experiment configuration: how much everything is scaled down.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpConfig {
    /// Table I matrix down-scale factor (rows and nnz divided by this).
    pub scale: usize,
    /// Case-study graph down-scale factor (Table III).
    pub graph_scale: usize,
    /// The SpaceA machine under test.
    pub hw: HwConfig,
    /// Energy model parameters.
    pub energy: EnergyParams,
}

impl Default for ExpConfig {
    /// The harness default: matrices at 1/8, a 2-cube machine (the paper's
    /// per-PE work regime; see DESIGN.md section 4).
    fn default() -> Self {
        ExpConfig {
            scale: suite::DEFAULT_SCALE,
            graph_scale: 64,
            hw: HwConfig::scaled(),
            energy: EnergyParams::default(),
        }
    }
}

impl ExpConfig {
    /// A much smaller configuration for unit tests: small matrices on a tiny
    /// machine, so every experiment module can be exercised quickly.
    pub fn quick() -> Self {
        ExpConfig {
            scale: 256,
            graph_scale: 2048,
            hw: HwConfig::tiny(),
            energy: EnergyParams::default(),
        }
    }

    /// The iso-area scale factor for baselines: the paper compares its
    /// 3584-Product-PE machine (16 cubes) against a full Titan Xp / DGX-1,
    /// so a smaller machine is compared against a proportional slice of the
    /// baseline.
    pub fn baseline_fraction(&self) -> f64 {
        self.hw.shape.product_pes() as f64 / MachineShape::paper().product_pes() as f64
    }

    /// The Titan Xp slice matching this machine's cube count.
    pub fn gpu_spec(&self) -> TitanXpSpec {
        let f = self.baseline_fraction();
        let full = TitanXpSpec::default();
        TitanXpSpec {
            dram_bw: full.dram_bw * f,
            peak_flops: full.peak_flops * f,
            l2_bytes: ((full.l2_bytes as f64 * f) as usize).max(64 * 1024),
            idle_power_w: full.idle_power_w * f,
            dram_power_w: full.dram_power_w * f,
            alu_power_w: full.alu_power_w * f,
            ..full
        }
    }

    /// The DGX-1 CPU slice matching this machine's cube count.
    pub fn cpu_spec(&self) -> Dgx1CpuSpec {
        let full = Dgx1CpuSpec::default();
        Dgx1CpuSpec { mem_bw: full.mem_bw * self.baseline_fraction(), ..full }
    }

    /// The deterministic input vector used by every SpMV experiment.
    pub fn input_vector(&self, n: usize) -> Vec<f64> {
        (0..n).map(|i| 1.0 + (i % 7) as f64 * 0.25).collect()
    }

    /// Static-power structure counts for an arbitrary shape.
    pub fn static_config_for(shape: &MachineShape) -> StaticConfig {
        let layers = shape.product_bgs_per_vault + 1;
        StaticConfig {
            banks: shape.vaults() * layers * shape.banks_per_bg,
            bank_groups: shape.vaults() * layers,
            vaults: shape.vaults(),
            cubes: shape.cubes,
        }
    }
}

/// One result table (plus optional sub-tables) and the headline numbers the
/// EXPERIMENTS.md generator records as paper-vs-measured.
#[derive(Debug, Clone, Default)]
pub struct ExpOutput {
    /// Experiment id (`"fig5"`, `"table3"`…).
    pub id: &'static str,
    /// The main rendered table.
    pub table: Table,
    /// Additional tables (e.g. Figure 7's five panels).
    pub extra_tables: Vec<Table>,
    /// Headline `(metric, paper value, measured value)` triples.
    pub headline: Vec<(String, f64, f64)>,
}

/// Memoizes matrices, mappings, GPU runs and SpaceA simulations across
/// experiments in one process.
pub struct SuiteCache {
    /// The shared configuration.
    pub cfg: ExpConfig,
    matrices: HashMap<u8, Rc<Csr>>,
    mappings: HashMap<(u8, MapKind, MachineShape), Rc<Mapping>>,
    gpu_runs: HashMap<u8, GpuRun>,
    sims: HashMap<(u8, MapKind), Rc<SimReport>>,
}

impl SuiteCache {
    /// Creates a cache for a configuration.
    pub fn new(cfg: ExpConfig) -> Self {
        SuiteCache {
            cfg,
            matrices: HashMap::new(),
            mappings: HashMap::new(),
            gpu_runs: HashMap::new(),
            sims: HashMap::new(),
        }
    }

    /// The Table I entries (always all fifteen).
    pub fn entries(&self) -> &'static [SuiteEntry] {
        suite::entries()
    }

    /// The scaled matrix for Table I id `id`.
    pub fn matrix(&mut self, id: u8) -> Rc<Csr> {
        let scale = self.cfg.scale;
        Rc::clone(self.matrices.entry(id).or_insert_with(|| {
            Rc::new(suite::entry_by_id(id).expect("valid Table I id").generate(scale))
        }))
    }

    /// The mapping of matrix `id` for the cache's machine shape.
    pub fn mapping(&mut self, id: u8, kind: MapKind) -> Rc<Mapping> {
        let shape = self.cfg.hw.shape;
        self.mapping_for_shape(id, kind, shape)
    }

    /// The mapping of matrix `id` for an arbitrary shape (Figure 10 sweeps).
    pub fn mapping_for_shape(&mut self, id: u8, kind: MapKind, shape: MachineShape) -> Rc<Mapping> {
        if let Some(m) = self.mappings.get(&(id, kind, shape)) {
            return Rc::clone(m);
        }
        let a = self.matrix(id);
        let mapping = match kind {
            MapKind::Proposed => LocalityMapping::default().map(&a, &shape),
            MapKind::Naive => NaiveMapping::default().map(&a, &shape),
        };
        let rc = Rc::new(mapping);
        self.mappings.insert((id, kind, shape), Rc::clone(&rc));
        rc
    }

    /// The GPU baseline run for matrix `id` (iso-area scaled spec).
    pub fn gpu(&mut self, id: u8) -> GpuRun {
        if let Some(r) = self.gpu_runs.get(&id) {
            return *r;
        }
        let a = self.matrix(id);
        let run = simulate_csrmv(&self.cfg.gpu_spec(), &a);
        self.gpu_runs.insert(id, run);
        run
    }

    /// The SpaceA simulation of matrix `id` on the default machine.
    pub fn sim(&mut self, id: u8, kind: MapKind) -> Rc<SimReport> {
        if let Some(r) = self.sims.get(&(id, kind)) {
            return Rc::clone(r);
        }
        let hw = self.cfg.hw.clone();
        let report = self.sim_with(id, kind, &hw);
        let rc = Rc::new(report);
        self.sims.insert((id, kind), Rc::clone(&rc));
        rc
    }

    /// An uncached simulation with a custom hardware configuration
    /// (sensitivity sweeps). The mapping is still cached per shape.
    pub fn sim_with(&mut self, id: u8, kind: MapKind, hw: &HwConfig) -> SimReport {
        let a = self.matrix(id);
        let mapping = self.mapping_for_shape(id, kind, hw.shape);
        let x = self.cfg.input_vector(a.cols());
        Machine::new(hw.clone())
            .run_spmv(&a, &x, &mapping)
            .expect("suite simulation must validate")
    }

    /// The energy breakdown of a cached default-machine simulation.
    pub fn energy(&mut self, id: u8, kind: MapKind) -> EnergyBreakdown {
        let report = self.sim(id, kind);
        let sc = ExpConfig::static_config_for(&self.cfg.hw.shape);
        self.cfg.energy.breakdown(&report.activity, &sc)
    }

    /// Speedup of SpaceA (with `kind` mapping) over the GPU baseline.
    pub fn speedup(&mut self, id: u8, kind: MapKind) -> f64 {
        let gpu = self.gpu(id);
        let sim = self.sim(id, kind);
        gpu.time_s / sim.seconds
    }

    /// Energy saving of SpaceA over the GPU baseline (fraction in `[0, 1)`
    /// when SpaceA wins).
    pub fn energy_saving(&mut self, id: u8, kind: MapKind) -> f64 {
        let gpu = self.gpu(id);
        let e = self.energy(id, kind);
        1.0 - e.total_j() / gpu.energy_j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_memoizes_matrices() {
        let mut c = SuiteCache::new(ExpConfig::quick());
        let a = c.matrix(1);
        let b = c.matrix(1);
        assert!(Rc::ptr_eq(&a, &b));
    }

    #[test]
    fn cache_memoizes_sims() {
        let mut c = SuiteCache::new(ExpConfig::quick());
        let r1 = c.sim(12, MapKind::Proposed);
        let r2 = c.sim(12, MapKind::Proposed);
        assert!(Rc::ptr_eq(&r1, &r2));
        assert!(r1.validated);
    }

    #[test]
    fn speedup_positive() {
        let mut c = SuiteCache::new(ExpConfig::quick());
        assert!(c.speedup(1, MapKind::Proposed) > 0.0);
    }

    #[test]
    fn gpu_spec_scaling() {
        let cfg = ExpConfig::default();
        // 2 cubes with the paper's per-cube structure → 1/8 of the full GPU.
        assert!((cfg.gpu_spec().dram_bw - 547.8e9 / 8.0).abs() < 1.0);
        assert!((cfg.baseline_fraction() - 0.125).abs() < 1e-12);
        // The tiny test machine has 16 of the paper's 3584 PEs.
        let tiny = ExpConfig::quick();
        assert!((tiny.baseline_fraction() - 16.0 / 3584.0).abs() < 1e-12);
    }

    #[test]
    fn static_config_for_counts() {
        let sc = ExpConfig::static_config_for(&MachineShape::tiny());
        assert_eq!(sc.banks, 24);
        assert_eq!(sc.vaults, 4);
    }

    #[test]
    fn input_vector_deterministic() {
        let cfg = ExpConfig::quick();
        assert_eq!(cfg.input_vector(10), cfg.input_vector(10));
        assert_eq!(cfg.input_vector(3).len(), 3);
    }
}
