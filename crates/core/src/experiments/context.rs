//! Shared experiment configuration and the store-backed computation cache.

use crate::table::Table;
use spacea_arch::{HwConfig, SimReport};
use spacea_backend::{BackendKind, HbmSpec, Partition};
use spacea_gpu::spec::{Dgx1CpuSpec, TitanXpSpec};
use spacea_gpu::GpuRun;
use spacea_harness::{JobCtx, JobResult, JobSpec, MatrixSource, ResultStore, ScenarioRec};
use spacea_mapping::{MachineShape, Mapping};
use spacea_matrix::formats::FormatKind;
use spacea_matrix::suite::{self, SuiteEntry};
use spacea_matrix::Csr;
use spacea_model::energy::StaticConfig;
use spacea_model::{EnergyBreakdown, EnergyParams};
use std::sync::Arc;

pub use spacea_mapping::MapKind;

/// Experiment configuration: how much everything is scaled down.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpConfig {
    /// Table I matrix down-scale factor (rows and nnz divided by this).
    pub scale: usize,
    /// Case-study graph down-scale factor (Table III).
    pub graph_scale: usize,
    /// The SpaceA machine under test.
    pub hw: HwConfig,
    /// Energy model parameters.
    pub energy: EnergyParams,
}

impl Default for ExpConfig {
    /// The harness default: matrices at 1/8, a 2-cube machine (the paper's
    /// per-PE work regime; see DESIGN.md section 4).
    fn default() -> Self {
        ExpConfig {
            scale: suite::DEFAULT_SCALE,
            graph_scale: 64,
            hw: HwConfig::scaled(),
            energy: EnergyParams::default(),
        }
    }
}

impl ExpConfig {
    /// A much smaller configuration for unit tests: small matrices on a tiny
    /// machine, so every experiment module can be exercised quickly.
    pub fn quick() -> Self {
        ExpConfig {
            scale: 256,
            graph_scale: 2048,
            hw: HwConfig::tiny(),
            energy: EnergyParams::default(),
        }
    }

    /// Axis constructor: this configuration at a different Table I matrix
    /// scale.
    pub fn with_scale(mut self, scale: usize) -> Self {
        self.scale = scale.max(1);
        self
    }

    /// Axis constructor: this configuration at a different case-study graph
    /// scale.
    pub fn with_graph_scale(mut self, graph_scale: usize) -> Self {
        self.graph_scale = graph_scale.max(1);
        self
    }

    /// Axis constructor: this configuration on a different machine.
    pub fn with_hw(mut self, hw: HwConfig) -> Self {
        self.hw = hw;
        self
    }

    /// Axis constructor: this configuration's machine with a different cube
    /// count (per-cube structure unchanged).
    pub fn with_cubes(mut self, cubes: usize) -> Self {
        self.hw = self.hw.with_cubes(cubes);
        self
    }

    /// The iso-area scale factor for baselines: the paper compares its
    /// 3584-Product-PE machine (16 cubes) against a full Titan Xp / DGX-1,
    /// so a smaller machine is compared against a proportional slice of the
    /// baseline.
    pub fn baseline_fraction(&self) -> f64 {
        self.hw.shape.product_pes() as f64 / MachineShape::paper().product_pes() as f64
    }

    /// The Titan Xp slice matching this machine's cube count.
    pub fn gpu_spec(&self) -> TitanXpSpec {
        let f = self.baseline_fraction();
        let full = TitanXpSpec::default();
        TitanXpSpec {
            dram_bw: full.dram_bw * f,
            peak_flops: full.peak_flops * f,
            l2_bytes: ((full.l2_bytes as f64 * f) as usize).max(64 * 1024),
            idle_power_w: full.idle_power_w * f,
            dram_power_w: full.dram_power_w * f,
            alu_power_w: full.alu_power_w * f,
            ..full
        }
    }

    /// The DGX-1 CPU slice matching this machine's cube count.
    pub fn cpu_spec(&self) -> Dgx1CpuSpec {
        let full = Dgx1CpuSpec::default();
        Dgx1CpuSpec { mem_bw: full.mem_bw * self.baseline_fraction(), ..full }
    }

    /// The deterministic input vector used by every SpMV experiment
    /// (delegates to the harness so cached job results stay valid).
    pub fn input_vector(&self, n: usize) -> Vec<f64> {
        spacea_harness::input_vector(n)
    }

    /// The [`MatrixSource`] naming Table I matrix `id` at this
    /// configuration's scale.
    pub fn source(&self, id: u8) -> MatrixSource {
        MatrixSource::Suite { id, scale: self.scale }
    }

    /// The job computing the GPU baseline for matrix `id`.
    pub fn gpu_job(&self, id: u8) -> JobSpec {
        JobSpec::Gpu { source: self.source(id), spec: self.gpu_spec() }
    }

    /// The job simulating matrix `id` on the default machine.
    pub fn sim_job(&self, id: u8, kind: MapKind) -> JobSpec {
        self.sim_job_with(id, kind, &self.hw)
    }

    /// The job simulating matrix `id` on an arbitrary machine.
    pub fn sim_job_with(&self, id: u8, kind: MapKind, hw: &HwConfig) -> JobSpec {
        JobSpec::Sim { source: self.source(id), kind, hw: hw.clone(), energy: self.energy }
    }

    /// The HBM accelerator parameters scenario cells run against.
    pub fn hbm_spec(&self) -> HbmSpec {
        HbmSpec::default()
    }

    /// The job running one backend × format × partitioning scenario cell on
    /// matrix `id` (bitwise-verified against the CSR reference).
    pub fn scenario_job(
        &self,
        id: u8,
        backend: BackendKind,
        format: FormatKind,
        partition: Partition,
    ) -> JobSpec {
        JobSpec::Scenario {
            source: self.source(id),
            backend,
            format,
            partition,
            kind: MapKind::Proposed,
            hw: self.hw.clone(),
            gpu: self.gpu_spec(),
            hbm: self.hbm_spec(),
        }
    }

    /// Static-power structure counts for an arbitrary shape.
    pub fn static_config_for(shape: &MachineShape) -> StaticConfig {
        let layers = shape.product_bgs_per_vault + 1;
        StaticConfig {
            banks: shape.vaults() * layers * shape.banks_per_bg,
            bank_groups: shape.vaults() * layers,
            vaults: shape.vaults(),
            cubes: shape.cubes,
        }
    }
}

/// One result table (plus optional sub-tables) and the headline numbers the
/// EXPERIMENTS.md generator records as paper-vs-measured.
#[derive(Debug, Clone, Default)]
pub struct ExpOutput {
    /// Experiment id (`"fig5"`, `"table3"`…).
    pub id: &'static str,
    /// The main rendered table.
    pub table: Table,
    /// Additional tables (e.g. Figure 7's five panels).
    pub extra_tables: Vec<Table>,
    /// Headline `(metric, paper value, measured value)` triples.
    pub headline: Vec<(String, f64, f64)>,
}

/// Store-backed access to matrices, mappings, GPU runs and SpaceA
/// simulations, shared across experiments (and worker threads) in one
/// process.
///
/// Every expensive result is addressed by its [`JobSpec`] content hash in a
/// shared [`ResultStore`], so work pre-computed by the parallel harness
/// ([`spacea_harness::run_jobs`]) is found here by key — rendering never
/// recomputes, which is what makes parallel runs byte-identical to serial
/// ones. Matrices and mappings (job *inputs*) are memoized in a shared
/// [`JobCtx`].
pub struct SuiteCache {
    /// The shared configuration.
    pub cfg: ExpConfig,
    store: Arc<ResultStore>,
    ctx: Arc<JobCtx>,
}

impl SuiteCache {
    /// Creates a cache with a fresh in-memory store.
    pub fn new(cfg: ExpConfig) -> Self {
        SuiteCache::with_store(cfg, Arc::new(ResultStore::in_memory()), Arc::new(JobCtx::new()))
    }

    /// Creates a cache over an existing (possibly pre-warmed, possibly
    /// disk-backed) store and input context.
    pub fn with_store(cfg: ExpConfig, store: Arc<ResultStore>, ctx: Arc<JobCtx>) -> Self {
        SuiteCache { cfg, store, ctx }
    }

    /// The shared result store.
    pub fn store(&self) -> &Arc<ResultStore> {
        &self.store
    }

    /// The shared matrix/mapping context.
    pub fn ctx(&self) -> &Arc<JobCtx> {
        &self.ctx
    }

    /// The Table I entries (always all fifteen).
    pub fn entries(&self) -> &'static [SuiteEntry] {
        suite::entries()
    }

    /// The [`MatrixSource`] naming Table I matrix `id` at this
    /// configuration's scale.
    pub fn source(&self, id: u8) -> MatrixSource {
        self.cfg.source(id)
    }

    /// The job computing the GPU baseline for matrix `id`.
    pub fn gpu_job(&self, id: u8) -> JobSpec {
        self.cfg.gpu_job(id)
    }

    /// The job simulating matrix `id` on the default machine.
    pub fn sim_job(&self, id: u8, kind: MapKind) -> JobSpec {
        self.cfg.sim_job(id, kind)
    }

    /// The job simulating matrix `id` on an arbitrary machine.
    pub fn sim_job_with(&self, id: u8, kind: MapKind, hw: &HwConfig) -> JobSpec {
        self.cfg.sim_job_with(id, kind, hw)
    }

    /// The scaled matrix for Table I id `id`.
    pub fn matrix(&mut self, id: u8) -> Arc<Csr> {
        self.ctx.matrix(&self.source(id))
    }

    /// An arbitrary source's matrix (case-study operands).
    pub fn matrix_of(&mut self, source: &MatrixSource) -> Arc<Csr> {
        self.ctx.matrix(source)
    }

    /// The mapping of matrix `id` for the cache's machine shape.
    pub fn mapping(&mut self, id: u8, kind: MapKind) -> Arc<Mapping> {
        let shape = self.cfg.hw.shape;
        self.mapping_for_shape(id, kind, shape)
    }

    /// The mapping of matrix `id` for an arbitrary shape (Figure 10 sweeps).
    pub fn mapping_for_shape(
        &mut self,
        id: u8,
        kind: MapKind,
        shape: MachineShape,
    ) -> Arc<Mapping> {
        self.ctx.mapping(&self.source(id), kind, shape)
    }

    /// Runs a job through the store: hit → cached result, miss → execute
    /// here (serially) and insert.
    ///
    /// # Panics
    ///
    /// Panics if the job fails. Rendering runs on the serial path with
    /// trusted experiment definitions; supervised sweeps go through
    /// [`spacea_harness::run_jobs_supervised`] instead.
    pub fn run_job(&mut self, job: &JobSpec) -> JobResult {
        let key = job.key();
        if let Some((result, _)) = self.store.lookup(key) {
            return result;
        }
        let result = spacea_harness::exec::execute(job, &self.ctx)
            // lint:allow(R1) documented panic: the serial render path runs trusted jobs
            .unwrap_or_else(|e| panic!("job {} failed: {e}", job.label()));
        self.store.insert(key, result.clone());
        result
    }

    /// Unwraps a sim job's result variant.
    ///
    /// # Panics
    ///
    /// Panics when the store hands back a non-`Sim` result for a sim job
    /// key, which means the content-addressed cache is corrupt — not
    /// recoverable on the render path.
    fn expect_sim(job: &JobSpec, result: JobResult) -> Arc<SimReport> {
        match result {
            JobResult::Sim(report) => report,
            // lint:allow(R1) documented panic: result-kind mismatch is cache corruption
            other => panic!("sim job {} returned {other:?}", job.label()),
        }
    }

    /// The GPU baseline run for matrix `id` (iso-area scaled spec).
    pub fn gpu(&mut self, id: u8) -> GpuRun {
        let job = self.gpu_job(id);
        match self.run_job(&job) {
            JobResult::Gpu(run) => run,
            // lint:allow(R1) documented panic: result-kind mismatch is cache corruption
            other => panic!("gpu job {} returned {other:?}", job.label()),
        }
    }

    /// The SpaceA simulation of matrix `id` on the default machine.
    pub fn sim(&mut self, id: u8, kind: MapKind) -> Arc<SimReport> {
        let hw = self.cfg.hw.clone();
        self.sim_with(id, kind, &hw)
    }

    /// The simulation of matrix `id` with a custom hardware configuration
    /// (sensitivity sweeps). Cached in the store like every other sim.
    pub fn sim_with(&mut self, id: u8, kind: MapKind, hw: &HwConfig) -> Arc<SimReport> {
        let job = self.sim_job_with(id, kind, hw);
        let result = self.run_job(&job);
        Self::expect_sim(&job, result)
    }

    /// The simulation of an arbitrary matrix source on the default machine
    /// with the proposed mapping semantics of `kind` (Table III operands).
    pub fn sim_source(&mut self, source: &MatrixSource, kind: MapKind) -> Arc<SimReport> {
        let job = JobSpec::Sim {
            source: *source,
            kind,
            hw: self.cfg.hw.clone(),
            energy: self.cfg.energy,
        };
        let result = self.run_job(&job);
        Self::expect_sim(&job, result)
    }

    /// One backend × format × partitioning scenario cell for matrix `id`,
    /// computed (and cached) through the store like every other job.
    pub fn scenario(
        &mut self,
        id: u8,
        backend: BackendKind,
        format: FormatKind,
        partition: Partition,
    ) -> ScenarioRec {
        let job = self.cfg.scenario_job(id, backend, format, partition);
        match self.run_job(&job) {
            JobResult::Scenario(rec) => rec,
            // lint:allow(R1) documented panic: result-kind mismatch is cache corruption
            other => panic!("scenario job {} returned {other:?}", job.label()),
        }
    }

    /// The energy breakdown of a cached default-machine simulation.
    pub fn energy(&mut self, id: u8, kind: MapKind) -> EnergyBreakdown {
        let report = self.sim(id, kind);
        let sc = ExpConfig::static_config_for(&self.cfg.hw.shape);
        self.cfg.energy.breakdown(&report.activity, &sc)
    }

    /// Speedup of SpaceA (with `kind` mapping) over the GPU baseline.
    pub fn speedup(&mut self, id: u8, kind: MapKind) -> f64 {
        let gpu = self.gpu(id);
        let sim = self.sim(id, kind);
        gpu.time_s / sim.seconds
    }

    /// Energy saving of SpaceA over the GPU baseline (fraction in `[0, 1)`
    /// when SpaceA wins).
    pub fn energy_saving(&mut self, id: u8, kind: MapKind) -> f64 {
        let gpu = self.gpu(id);
        let e = self.energy(id, kind);
        1.0 - e.total_j() / gpu.energy_j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_memoizes_matrices() {
        let mut c = SuiteCache::new(ExpConfig::quick());
        let a = c.matrix(1);
        let b = c.matrix(1);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn cache_memoizes_sims() {
        let mut c = SuiteCache::new(ExpConfig::quick());
        let r1 = c.sim(12, MapKind::Proposed);
        let r2 = c.sim(12, MapKind::Proposed);
        assert_eq!(r1, r2);
        assert_eq!(c.store().stats().mem_hits, 1);
        assert!(r1.validated);
    }

    #[test]
    fn sweep_sims_are_cached_too() {
        let mut c = SuiteCache::new(ExpConfig::quick());
        let mut hw = c.cfg.hw.clone();
        hw.tsv_latency = 9;
        let r1 = c.sim_with(3, MapKind::Proposed, &hw);
        let misses = c.store().stats().misses;
        let r2 = c.sim_with(3, MapKind::Proposed, &hw);
        assert_eq!(r1, r2);
        assert_eq!(c.store().stats().misses, misses, "second sweep sim must hit");
    }

    #[test]
    fn caches_sharing_a_store_share_results() {
        let mut a = SuiteCache::new(ExpConfig::quick());
        a.sim(5, MapKind::Proposed);
        let mut b =
            SuiteCache::with_store(ExpConfig::quick(), Arc::clone(a.store()), Arc::clone(a.ctx()));
        b.sim(5, MapKind::Proposed);
        let stats = b.store().stats();
        assert_eq!(stats.mem_hits, 1, "second cache must reuse the first's sim");
    }

    #[test]
    fn axis_constructors_compose() {
        let cfg = ExpConfig::quick().with_scale(32).with_graph_scale(512).with_cubes(4);
        assert_eq!(cfg.scale, 32);
        assert_eq!(cfg.graph_scale, 512);
        assert_eq!(cfg.hw.shape.cubes, 4);
        assert_eq!(cfg.hw.shape.vaults_per_cube, ExpConfig::quick().hw.shape.vaults_per_cube);
        let cfg = ExpConfig::quick().with_hw(HwConfig::hbm_like());
        assert_eq!(cfg.hw, HwConfig::hbm_like());
        assert_eq!(ExpConfig::quick().with_scale(0).scale, 1, "scale clamps to 1");
    }

    #[test]
    fn speedup_positive() {
        let mut c = SuiteCache::new(ExpConfig::quick());
        assert!(c.speedup(1, MapKind::Proposed) > 0.0);
    }

    #[test]
    fn gpu_spec_scaling() {
        let cfg = ExpConfig::default();
        // 2 cubes with the paper's per-cube structure → 1/8 of the full GPU.
        assert!((cfg.gpu_spec().dram_bw - 547.8e9 / 8.0).abs() < 1.0);
        assert!((cfg.baseline_fraction() - 0.125).abs() < 1e-12);
        // The tiny test machine has 16 of the paper's 3584 PEs.
        let tiny = ExpConfig::quick();
        assert!((tiny.baseline_fraction() - 16.0 / 3584.0).abs() < 1e-12);
    }

    #[test]
    fn static_config_for_counts() {
        let sc = ExpConfig::static_config_for(&MachineShape::tiny());
        assert_eq!(sc.banks, 24);
        assert_eq!(sc.vaults, 4);
    }

    #[test]
    fn input_vector_deterministic() {
        let cfg = ExpConfig::quick();
        assert_eq!(cfg.input_vector(10), cfg.input_vector(10));
        assert_eq!(cfg.input_vector(3).len(), 3);
        // Must match the harness function exactly: cached sim results depend
        // on it.
        assert_eq!(cfg.input_vector(20), spacea_harness::input_vector(20));
    }
}
