//! Figure 10: scalability of SpaceA with the number of memory cubes.
//!
//! The paper sweeps 16 → 32 → 64 cubes; this harness sweeps the same 1:2:4
//! ratio from the configured base machine (2 → 4 → 8 cubes by default).

use super::context::{ExpConfig, ExpOutput, MapKind, SuiteCache};
use crate::table::{fmt, geo_mean, Table};
use spacea_arch::HwConfig;
use spacea_harness::JobSpec;
use spacea_mapping::MachineShape;
use spacea_matrix::suite;
use spacea_model::reference::paper_headline;
use std::sync::Arc;

/// The configuration this figure actually sweeps: matrices twice the
/// configured size (`scale / 2`) — the sweep's larger machines would
/// otherwise leave so little work per PE that the scaled-down matrices stop
/// resembling the paper's fixed-size workloads (DESIGN.md §4).
fn sweep_config(cfg: &ExpConfig) -> ExpConfig {
    let mut cfg = cfg.clone();
    cfg.scale = (cfg.scale / 2).max(1);
    cfg
}

/// The 1:2:4 cube-count ratio sweep from the configured base machine.
fn cube_counts(cfg: &ExpConfig) -> [usize; 3] {
    let base = cfg.hw.shape.cubes;
    [base, base * 2, base * 4]
}

/// The jobs this figure consumes: every matrix (at the sweep scale) on each
/// swept cube count.
pub fn jobs(cfg: &ExpConfig) -> Vec<JobSpec> {
    let cfg = sweep_config(cfg);
    let mut jobs = Vec::new();
    for &cubes in &cube_counts(&cfg) {
        let shape = MachineShape { cubes, ..cfg.hw.shape };
        let hw = HwConfig { shape, ..cfg.hw.clone() };
        for e in suite::entries() {
            jobs.push(cfg.sim_job_with(e.id, MapKind::Proposed, &hw));
        }
    }
    jobs
}

/// Regenerates the Figure 10 series: speedup vs the base cube count.
pub fn run(cache: &mut SuiteCache) -> ExpOutput {
    // The sweep-scale cache shares the caller's store and context, so jobs
    // pre-warmed by the harness are found by key instead of recomputed.
    let mut local = SuiteCache::with_store(
        sweep_config(&cache.cfg),
        Arc::clone(cache.store()),
        Arc::clone(cache.ctx()),
    );
    let cache = &mut local;
    let cube_counts = cube_counts(&cache.cfg);
    let mut headers: Vec<String> = vec!["ID".into(), "Matrix".into()];
    headers.extend(cube_counts.iter().map(|c| format!("#cubes={c}")));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new("Figure 10: normalized speedup vs number of cubes", &headers_ref);

    let ids: Vec<(u8, String)> =
        cache.entries().iter().map(|e| (e.id, e.name.to_string())).collect();
    let mut per_count: Vec<Vec<f64>> = vec![Vec::new(); cube_counts.len()];
    for (id, name) in ids {
        let mut cycles = Vec::new();
        for &cubes in &cube_counts {
            let shape = MachineShape { cubes, ..cache.cfg.hw.shape };
            let hw = HwConfig { shape, ..cache.cfg.hw.clone() };
            cycles.push(cache.sim_with(id, MapKind::Proposed, &hw).cycles as f64);
        }
        let base = cycles[0];
        let mut row = vec![id.to_string(), name];
        for (k, c) in cycles.iter().enumerate() {
            let speedup = base / c;
            row.push(fmt(speedup, 3));
            per_count[k].push(speedup);
        }
        table.push_row(row);
    }
    let mut mean_row = vec!["-".to_string(), "Geo. Mean".to_string()];
    let mut means = Vec::new();
    for v in &per_count {
        let m = geo_mean(v);
        means.push(m);
        mean_row.push(fmt(m, 3));
    }
    table.push_row(mean_row);
    table.push_note(format!(
        "paper (16->32->64 cubes): 1.00x -> {}x -> {}x; the ratio sweep here is {}:{}:{} cubes",
        paper_headline::SCALE_32_CUBES,
        paper_headline::SCALE_64_CUBES,
        cube_counts[0],
        cube_counts[1],
        cube_counts[2]
    ));

    ExpOutput {
        id: "fig10",
        table,
        extra_tables: vec![],
        headline: vec![
            ("speedup at 2x cubes".into(), paper_headline::SCALE_32_CUBES, means[1]),
            ("speedup at 4x cubes".into(), paper_headline::SCALE_64_CUBES, means[2]),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::context::ExpConfig;

    #[test]
    fn more_cubes_help_but_sublinearly() {
        let mut cache = SuiteCache::new(ExpConfig::quick());
        let out = run(&mut cache);
        let s2 = out.headline[0].2;
        let s4 = out.headline[1].2;
        assert!(s2 > 1.0, "2x cubes must speed up ({s2})");
        assert!(s4 >= s2, "4x cubes must be at least as fast as 2x ({s4} vs {s2})");
        assert!(s4 < 4.0, "scalability must be sublinear ({s4})");
    }
}
