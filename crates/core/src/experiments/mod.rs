//! The paper's evaluation, experiment by experiment (Section V).
//!
//! Every table and figure has a module that regenerates its rows/series:
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`table1`] | Table I — the matrix suite and its statistics |
//! | [`fig2`] | Figure 2 — GPU profiling (throughput, ALU utilization) |
//! | [`fig5`] | Figure 5 — speedup & energy saving vs GPU |
//! | [`table2`] | Table II — bank-group area and power density |
//! | [`fig6`] | Figure 6 — mapping metrics (workload, hit rates, traffic) |
//! | [`fig7`] | Figure 7 — L1/L2 CAM sensitivity and area trade-off |
//! | [`fig8`] | Figure 8 — energy breakdown |
//! | [`fig9`] | Figure 9 — TSV latency sensitivity |
//! | [`fig10`] | Figure 10 — cube-count scalability |
//! | [`table3`] | Table III — graph analytics vs Tesseract/GraphP |
//! | [`graphs`] | Case-study workloads (BFS, CC, PR, SSSP) as harness jobs |
//! | [`formats`] | Scenario matrix — backend × format × partitioning cells |
//!
//! All experiments share a [`SuiteCache`] so matrices, mappings and
//! simulations are computed once per process. The default [`ExpConfig`]
//! scales the Table I matrices by 1/8 and the machine to 2 cubes, preserving
//! the paper's work-per-PE regime (see DESIGN.md §4).

pub mod context;
pub mod fig10;
pub mod fig2;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod formats;
pub mod graphs;
pub mod table1;
pub mod table2;
pub mod table3;

pub use context::{ExpConfig, ExpOutput, MapKind, SuiteCache};

use spacea_harness::JobSpec;

/// A registered experiment: its id, paper artifact, the jobs it consumes
/// (what the parallel harness pre-warms) and its table renderer.
pub struct Experiment {
    /// Output id (`"fig5"`, `"table3"`…), matching [`ExpOutput::id`].
    pub id: &'static str,
    /// The paper artifact this experiment regenerates.
    pub title: &'static str,
    /// Enumerates every expensive job the renderer will look up, so the
    /// harness can compute them in parallel (and cache them) up front.
    pub jobs: fn(&ExpConfig) -> Vec<JobSpec>,
    /// Renders the experiment's tables from the (pre-warmed) cache.
    pub run: fn(&mut SuiteCache) -> ExpOutput,
}

/// Every experiment, in paper order.
pub fn registry() -> Vec<Experiment> {
    fn no_jobs(_: &ExpConfig) -> Vec<JobSpec> {
        Vec::new()
    }
    vec![
        Experiment {
            id: "table1",
            title: "Table I: sparse matrix suite",
            jobs: no_jobs,
            run: table1::run,
        },
        Experiment { id: "fig2", title: "Figure 2: SpMV on GPU", jobs: fig2::jobs, run: fig2::run },
        Experiment {
            id: "fig5",
            title: "Figure 5: speedup and energy saving",
            jobs: fig5::jobs,
            run: fig5::run,
        },
        Experiment {
            id: "table2",
            title: "Table II: bank-group area and power density",
            jobs: no_jobs,
            run: |_| table2::run(),
        },
        Experiment {
            id: "fig6",
            title: "Figure 6: mapping metrics",
            jobs: fig6::jobs,
            run: fig6::run,
        },
        Experiment {
            id: "fig7",
            title: "Figure 7: CAM sensitivity",
            jobs: fig7::jobs,
            run: fig7::run,
        },
        Experiment {
            id: "fig8",
            title: "Figure 8: energy breakdown",
            jobs: fig8::jobs,
            run: fig8::run,
        },
        Experiment {
            id: "fig9",
            title: "Figure 9: TSV latency sensitivity",
            jobs: fig9::jobs,
            run: fig9::run,
        },
        Experiment {
            id: "fig10",
            title: "Figure 10: cube-count scalability",
            jobs: fig10::jobs,
            run: fig10::run,
        },
        Experiment {
            id: "table3",
            title: "Table III: graph analytics case study",
            jobs: table3::jobs,
            run: table3::run,
        },
        Experiment {
            id: "graphs",
            title: "Graph case-study workloads as harness jobs",
            jobs: graphs::jobs,
            run: graphs::run,
        },
        Experiment {
            id: "formats",
            title: "Scenario matrix: backend x format x partitioning",
            jobs: formats::jobs,
            run: formats::run,
        },
    ]
}

/// Every distinct job the full evaluation consumes, in registry order with
/// duplicates removed (fig5/fig6/fig8 share simulations).
pub fn all_jobs(cfg: &ExpConfig) -> Vec<JobSpec> {
    spacea_harness::dedup_jobs(registry().iter().flat_map(|e| (e.jobs)(cfg)).collect())
}

/// Runs every experiment in paper order and returns the rendered tables.
///
/// This is what the `all_experiments` harness binary and the EXPERIMENTS.md
/// generator call.
pub fn run_all(cache: &mut SuiteCache) -> Vec<ExpOutput> {
    registry().iter().map(|e| (e.run)(cache)).collect()
}

/// Convenience: renders a list of outputs as one text document.
pub fn render_all(outputs: &[ExpOutput]) -> String {
    let mut out = String::new();
    for o in outputs {
        out.push_str(&o.table.to_text());
        out.push('\n');
        for extra in &o.extra_tables {
            out.push_str(&extra.to_text());
            out.push('\n');
        }
    }
    out
}
