//! The paper's evaluation, experiment by experiment (Section V).
//!
//! Every table and figure has a module that regenerates its rows/series:
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`table1`] | Table I — the matrix suite and its statistics |
//! | [`fig2`] | Figure 2 — GPU profiling (throughput, ALU utilization) |
//! | [`fig5`] | Figure 5 — speedup & energy saving vs GPU |
//! | [`table2`] | Table II — bank-group area and power density |
//! | [`fig6`] | Figure 6 — mapping metrics (workload, hit rates, traffic) |
//! | [`fig7`] | Figure 7 — L1/L2 CAM sensitivity and area trade-off |
//! | [`fig8`] | Figure 8 — energy breakdown |
//! | [`fig9`] | Figure 9 — TSV latency sensitivity |
//! | [`fig10`] | Figure 10 — cube-count scalability |
//! | [`table3`] | Table III — graph analytics vs Tesseract/GraphP |
//!
//! All experiments share a [`SuiteCache`] so matrices, mappings and
//! simulations are computed once per process. The default [`ExpConfig`]
//! scales the Table I matrices by 1/8 and the machine to 2 cubes, preserving
//! the paper's work-per-PE regime (see DESIGN.md §4).

pub mod context;
pub mod fig10;
pub mod fig2;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table1;
pub mod table2;
pub mod table3;

pub use context::{ExpConfig, ExpOutput, MapKind, SuiteCache};


/// Runs every experiment in paper order and returns the rendered tables.
///
/// This is what the `all_experiments` harness binary and the EXPERIMENTS.md
/// generator call.
pub fn run_all(cache: &mut SuiteCache) -> Vec<ExpOutput> {
    vec![
        table1::run(cache),
        fig2::run(cache),
        fig5::run(cache),
        table2::run(),
        fig6::run(cache),
        fig7::run(cache),
        fig8::run(cache),
        fig9::run(cache),
        fig10::run(cache),
        table3::run(cache),
    ]
}

/// Convenience: renders a list of outputs as one text document.
pub fn render_all(outputs: &[ExpOutput]) -> String {
    let mut out = String::new();
    for o in outputs {
        out.push_str(&o.table.to_text());
        out.push('\n');
        for extra in &o.extra_tables {
            out.push_str(&extra.to_text());
            out.push('\n');
        }
    }
    out
}
