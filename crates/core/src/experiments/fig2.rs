//! Figure 2: profiling SpMV on the GPU baseline — DRAM read throughput,
//! effective read throughput, and ALU utilization per matrix.

use super::context::{ExpConfig, ExpOutput, SuiteCache};
use crate::table::{fmt, geo_mean, pct, Table};
use spacea_harness::JobSpec;
use spacea_matrix::suite;
use spacea_model::reference::paper_headline;

/// The GPU-baseline jobs this figure consumes (one per Table I matrix).
pub fn jobs(cfg: &ExpConfig) -> Vec<JobSpec> {
    suite::entries().iter().map(|e| cfg.gpu_job(e.id)).collect()
}

/// Regenerates the Figure 2 series.
pub fn run(cache: &mut SuiteCache) -> ExpOutput {
    let mut table = Table::new(
        "Figure 2: SpMV on GPU (Titan Xp model)",
        &["ID", "Matrix", "DRAM read GB/s", "Effective GB/s", "BW util", "ALU util"],
    );
    let mut bw_utils = Vec::new();
    let mut bw_utils_structural = Vec::new();
    let mut alu_utils = Vec::new();
    for entry in cache.entries().to_vec() {
        let r = cache.gpu(entry.id);
        // Report throughputs normalized back to the full-GPU scale so the
        // bars are comparable with the paper's absolute GB/s axis.
        let unscale = 1.0 / cache.cfg.baseline_fraction();
        table.push_row(vec![
            entry.id.to_string(),
            entry.name.to_string(),
            fmt(r.dram_read_throughput * unscale / 1e9, 1),
            fmt(r.effective_read_throughput * unscale / 1e9, 1),
            pct(r.bw_utilization),
            pct(r.alu_utilization),
        ]);
        bw_utils.push(r.bw_utilization);
        if !entry.is_power_law() {
            bw_utils_structural.push(r.bw_utilization);
        }
        alu_utils.push(r.alu_utilization);
    }
    let mean_bw = bw_utils.iter().sum::<f64>() / bw_utils.len() as f64;
    let mean_bw_structural =
        bw_utils_structural.iter().sum::<f64>() / bw_utils_structural.len() as f64;
    let mean_alu = geo_mean(&alu_utils);
    table.push_note(format!(
        "mean BW utilization {} (paper: 27.08%); excluding matrices 12-14: {} (paper: 43.39%)",
        pct(mean_bw),
        pct(mean_bw_structural)
    ));
    table.push_note(format!("geo-mean ALU utilization {} (paper: 2.68%)", pct(mean_alu)));

    ExpOutput {
        id: "fig2",
        table,
        extra_tables: vec![],
        headline: vec![
            ("mean GPU BW utilization".into(), paper_headline::GPU_BW_UTILIZATION, mean_bw),
            ("geo-mean GPU ALU utilization".into(), paper_headline::GPU_ALU_UTILIZATION, mean_alu),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::context::ExpConfig;

    #[test]
    fn utilization_shape_matches_paper() {
        let mut cache = SuiteCache::new(ExpConfig::quick());
        let out = run(&mut cache);
        assert_eq!(out.table.rows.len(), 15);
        let (_, _, mean_bw) = &out.headline[0];
        let (_, _, mean_alu) = &out.headline[1];
        // The shape claims: memory-bound (low ALU), moderate BW utilization.
        assert!(*mean_bw > 0.05 && *mean_bw < 0.7, "mean BW util {mean_bw}");
        assert!(*mean_alu < 0.15, "ALU util {mean_alu} should be single-digit");
    }

    #[test]
    fn power_law_rows_utilize_worse_than_structural() {
        let mut cache = SuiteCache::new(ExpConfig::quick());
        let mut structural = Vec::new();
        let mut graphs = Vec::new();
        for e in cache.entries().to_vec() {
            let r = cache.gpu(e.id);
            if e.is_power_law() {
                graphs.push(r.bw_utilization);
            } else {
                structural.push(r.bw_utilization);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&graphs) < mean(&structural));
    }
}
