//! Figure 8: energy-consumption breakdown for the naive and proposed
//! mappings, normalized to the naive mapping's DRAM dynamic energy.

use super::context::{ExpConfig, ExpOutput, MapKind, SuiteCache};
use crate::table::{fmt, Table};
use spacea_harness::JobSpec;

/// The jobs this figure consumes — the same default-machine simulations as
/// Figure 6 (the energy breakdown is derived from their activity counters).
pub fn jobs(cfg: &ExpConfig) -> Vec<JobSpec> {
    super::fig6::jobs(cfg)
}

/// Regenerates the Figure 8 stacked-bar data.
pub fn run(cache: &mut SuiteCache) -> ExpOutput {
    let mut table = Table::new(
        "Figure 8: energy breakdown (normalized to naive DRAM dynamic)",
        &[
            "ID",
            "Matrix",
            "Mapping",
            "DRAM dynamic",
            "PE & L1 & L2 dynamic",
            "Interconnect dynamic",
            "Total static",
        ],
    );
    let mut interconnect_savings = Vec::new();
    let mut static_savings = Vec::new();
    for entry in cache.entries().to_vec() {
        let en = cache.energy(entry.id, MapKind::Naive);
        let ep = cache.energy(entry.id, MapKind::Proposed);
        let base = en.dram_dynamic_j.max(f64::MIN_POSITIVE);
        for (kind, e) in [(MapKind::Naive, &en), (MapKind::Proposed, &ep)] {
            table.push_row(vec![
                entry.id.to_string(),
                entry.name.to_string(),
                kind.label().into(),
                fmt(e.dram_dynamic_j / base, 3),
                fmt(e.pe_cam_dynamic_j / base, 3),
                fmt(e.interconnect_dynamic_j / base, 3),
                fmt(e.static_j / base, 3),
            ]);
        }
        if en.interconnect_dynamic_j > 0.0 {
            interconnect_savings.push(1.0 - ep.interconnect_dynamic_j / en.interconnect_dynamic_j);
        }
        if en.static_j > 0.0 {
            static_savings.push(1.0 - ep.static_j / en.static_j);
        }
    }
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    let ic = mean(&interconnect_savings);
    let st = mean(&static_savings);
    table.push_note(format!(
        "proposed mapping saves {:.2}% of interconnect dynamic energy (paper: 65.55%)",
        ic * 100.0
    ));
    table.push_note(format!(
        "proposed mapping saves {:.2}% of static energy via speedup (paper: 54.05%)",
        st * 100.0
    ));
    table.push_note("added PE/L1/L2 dynamic energy is a negligible slice, as in the paper");

    ExpOutput {
        id: "fig8",
        table,
        extra_tables: vec![],
        headline: vec![
            ("interconnect dynamic saving".into(), 0.6555, ic),
            ("static energy saving".into(), 0.5405, st),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::context::ExpConfig;

    #[test]
    fn breakdown_shape_matches_paper() {
        let mut cache = SuiteCache::new(ExpConfig::quick());
        let out = run(&mut cache);
        assert_eq!(out.table.rows.len(), 30); // 15 matrices × 2 mappings
        let ic_saving = out.headline[0].2;
        assert!(ic_saving > 0.0, "proposed must save interconnect energy, got {ic_saving}");
    }

    #[test]
    fn added_logic_energy_is_negligible() {
        let mut cache = SuiteCache::new(ExpConfig::quick());
        for id in [1u8, 9, 13] {
            let e = cache.energy(id, MapKind::Proposed);
            assert!(
                e.pe_cam_dynamic_j < 0.2 * e.total_j(),
                "matrix {id}: PE/CAM dynamic should be a small slice"
            );
        }
    }
}
