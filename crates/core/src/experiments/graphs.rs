//! Graph case-study workloads (BFS, CC, PageRank, SSSP) as harness jobs.
//!
//! Table III reports only the PageRank and SSSP speedups; the graph crate
//! also implements BFS and connected components as semiring SpMV
//! iterations. This experiment registers every case-study workload's SpMV
//! operand as a content-addressed harness job — so sweeps, sharding, fault
//! drills and timeline export all reach the graph workloads too — and
//! renders one row per workload × graph with its iteration count and the
//! simulated SpaceA time per sweep.

use super::context::{ExpConfig, ExpOutput, MapKind, SuiteCache};
use crate::table::{fmt, Table};
use spacea_graph::workloads::CaseStudyGraph;
use spacea_graph::{bfs, connected_components, pagerank, sssp, PageRankConfig};
use spacea_harness::{GraphOperand, JobSpec, MatrixSource};

/// The case-study workloads and the SpMV operand each one iterates on.
///
/// BFS and SSSP sweep the plain transpose (pull-style frontier/relaxation),
/// CC propagates labels over the adjacency matrix, and PageRank multiplies
/// by the column-normalized transpose.
pub const WORKLOADS: [(&str, GraphOperand); 4] = [
    ("bfs", GraphOperand::Transpose),
    ("cc", GraphOperand::Adjacency),
    ("pagerank", GraphOperand::PageRank),
    ("sssp", GraphOperand::Transpose),
];

/// Every SpMV-operand simulation the case-study workloads consume: one job
/// per graph × distinct operand (BFS and SSSP share the transpose sweep).
pub fn jobs(cfg: &ExpConfig) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for graph in [CaseStudyGraph::Wiki, CaseStudyGraph::LiveJournal] {
        for operand in [GraphOperand::Adjacency, GraphOperand::PageRank, GraphOperand::Transpose] {
            jobs.push(JobSpec::Sim {
                source: MatrixSource::Graph { graph, scale: cfg.graph_scale, operand },
                kind: MapKind::Proposed,
                hw: cfg.hw.clone(),
                energy: cfg.energy,
            });
        }
    }
    spacea_harness::dedup_jobs(jobs)
}

/// One rendered workload row.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadRow {
    /// Workload name (`bfs`, `cc`, `pagerank`, `sssp`).
    pub workload: &'static str,
    /// Graph label (`WK`, `LJ`).
    pub graph: &'static str,
    /// Iterations until the workload converged.
    pub iterations: usize,
    /// Simulated SpaceA seconds for one SpMV sweep of the operand.
    pub sweep_seconds: f64,
}

impl WorkloadRow {
    /// Total simulated time: iterations × per-sweep time (operand
    /// preprocessing is offline and amortized, as in Table III).
    pub fn total_seconds(&self) -> f64 {
        self.sweep_seconds * self.iterations as f64
    }
}

/// Runs every workload on both graphs and returns the rows.
pub fn rows(cache: &mut SuiteCache) -> Vec<WorkloadRow> {
    let mut out = Vec::new();
    for graph in [CaseStudyGraph::Wiki, CaseStudyGraph::LiveJournal] {
        let scale = cache.cfg.graph_scale;
        let adj = cache.matrix_of(&MatrixSource::Graph {
            graph,
            scale,
            operand: GraphOperand::Adjacency,
        });
        for (workload, operand) in WORKLOADS {
            let iterations = match workload {
                "bfs" => bfs(&adj, 0).iterations,
                "cc" => connected_components(&adj).iterations,
                "pagerank" => pagerank(&adj, &PageRankConfig::default()).iterations,
                _ => sssp(&adj, 0).iterations,
            };
            let src = MatrixSource::Graph { graph, scale, operand };
            let sweep_seconds = cache.sim_source(&src, MapKind::Proposed).seconds;
            out.push(WorkloadRow { workload, graph: graph.label(), iterations, sweep_seconds });
        }
    }
    out
}

/// Regenerates the graph-workload summary table.
pub fn run(cache: &mut SuiteCache) -> ExpOutput {
    let rows = rows(cache);
    let mut table = Table::new(
        "Graph case-study workloads as harness jobs (BFS, CC, PR, SSSP)",
        &["Workload", "Graph", "Iterations", "us/sweep", "Total us"],
    );
    for r in &rows {
        table.push_row(vec![
            r.workload.to_string(),
            r.graph.to_string(),
            r.iterations.to_string(),
            fmt(r.sweep_seconds * 1e6, 2),
            fmt(r.total_seconds() * 1e6, 2),
        ]);
    }
    table.push_note(
        "each workload iterates one SpMV operand: bfs/sssp the transpose, cc the adjacency, \
         pagerank the column-normalized transpose",
    );
    table.push_note(format!(
        "graphs are R-MAT stand-ins scaled 1/{}; sweeps use the proposed mapping",
        cache.cfg.graph_scale
    ));
    ExpOutput { id: "graphs", table, extra_tables: vec![], headline: vec![] }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::context::ExpConfig;

    #[test]
    fn jobs_cover_both_graphs_and_dedup_shared_operands() {
        let cfg = ExpConfig::quick();
        let jobs = jobs(&cfg);
        // 2 graphs × 3 distinct operands (bfs and sssp share the transpose).
        assert_eq!(jobs.len(), 6);
    }

    #[test]
    fn every_workload_converges_and_costs_time() {
        let mut cache = SuiteCache::new(ExpConfig::quick());
        let rows = rows(&mut cache);
        assert_eq!(rows.len(), 8, "4 workloads x 2 graphs");
        for r in &rows {
            assert!(r.iterations > 0, "{} + {} never iterated", r.workload, r.graph);
            assert!(r.sweep_seconds > 0.0);
            assert!(r.total_seconds() >= r.sweep_seconds);
        }
        // BFS and SSSP simulate the same operand, so their per-sweep times
        // must come from the same cached simulation.
        let by = |w: &str, g: &str| {
            rows.iter().find(|r| r.workload == w && r.graph == g).unwrap().sweep_seconds
        };
        assert_eq!(by("bfs", "WK"), by("sssp", "WK"));
    }
}
