//! Table II: area and power density of the components in a bank group.

use super::context::ExpOutput;
use crate::table::{fmt, Table};
use spacea_model::AreaModel;

/// Regenerates Table II from the analytic area model.
pub fn run() -> ExpOutput {
    let model = AreaModel;
    let bg = model.bank_group();
    let mut table = Table::new(
        "Table II: area and power density of components in a bank group",
        &["Component", "Count", "Area (mm^2)", "Power density (mW/mm^2)"],
    );
    for c in &bg.components {
        table.push_row(vec![
            c.name.to_string(),
            format!("x{}", c.count),
            fmt(c.area_mm2 * c.count as f64, 4),
            fmt(c.power_density_mw_mm2, 2),
        ]);
    }
    table.push_row(vec![
        "Total / Peak".into(),
        "-".into(),
        fmt(bg.total_mm2(), 4),
        fmt(bg.peak_power_density(), 2),
    ]);
    table.push_note(format!(
        "bank-group overhead {:.2}% of a bank group, {:.2}% of the banks (paper: 4.86% / 5.96%)",
        model.bank_group_overhead_fraction() * 100.0,
        model.bank_overhead_fraction() * 100.0
    ));
    table.push_note(format!(
        "base die per vault: L2 CAM {} mm^2 + L2 LDQ {} mm^2 = {} mm^2 ({:.2}% of a vault; paper: 8.86%)",
        fmt(model.cam_area_mm2(2048, 4, 32), 4),
        fmt(model.ldq_area_mm2(8192), 4),
        fmt(model.vault_base_die_mm2(2048, 4, 8192), 4),
        model.vault_base_die_mm2(2048, 4, 8192) / AreaModel::VAULT_MM2 * 100.0
    ));
    table.push_note(format!(
        "peak footprint power density {} mW/mm^2 (paper: 532.48), commodity cooling limit {} mW/mm^2 -> {}",
        fmt(model.peak_footprint_power_density(), 2),
        fmt(AreaModel::COOLING_LIMIT_COMMODITY, 0),
        if model.thermally_feasible() { "feasible" } else { "INFEASIBLE" }
    ));

    ExpOutput {
        id: "table2",
        table,
        extra_tables: vec![],
        headline: vec![
            ("bank-group overhead mm^2".into(), 0.1458, bg.total_mm2()),
            ("peak power density mW/mm^2".into(), 66.56, bg.peak_power_density()),
            (
                "footprint power density mW/mm^2".into(),
                532.48,
                model.peak_footprint_power_density(),
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_totals_exactly() {
        let out = run();
        assert_eq!(out.table.rows.len(), 6); // 5 components + total
        for (name, paper, measured) in &out.headline {
            assert!(
                (paper - measured).abs() / paper < 1e-3,
                "{name}: paper {paper} vs measured {measured}"
            );
        }
    }
}
