//! Figure 6: mapping-quality metrics — normalized workload, L1/L2 CAM hit
//! rates, and TSV/NoC traffic of the proposed mapping relative to naive.

use super::context::{ExpConfig, ExpOutput, MapKind, SuiteCache};
use crate::table::{fmt, pct, Table};
use spacea_harness::JobSpec;
use spacea_matrix::suite;
use spacea_model::reference::paper_headline;

/// The jobs this figure consumes: both mappings simulated on the default
/// machine for every Table I matrix.
pub fn jobs(cfg: &ExpConfig) -> Vec<JobSpec> {
    suite::entries()
        .iter()
        .flat_map(|e| [cfg.sim_job(e.id, MapKind::Naive), cfg.sim_job(e.id, MapKind::Proposed)])
        .collect()
}

/// Regenerates the Figure 6 panels (a)–(d).
pub fn run(cache: &mut SuiteCache) -> ExpOutput {
    let mut table = Table::new(
        "Figure 6: naive vs proposed mapping metrics",
        &[
            "ID",
            "Matrix",
            "Norm. workload (N)",
            "Norm. workload (P)",
            "L1 hit (N)",
            "L1 hit (P)",
            "L2 hit (N)",
            "L2 hit (P)",
            "TSV traffic P/N",
            "NoC traffic P/N",
        ],
    );
    let mut wl_ratio = Vec::new();
    let mut l1_n = Vec::new();
    let mut l1_p = Vec::new();
    let mut l2_n = Vec::new();
    let mut l2_p = Vec::new();
    let mut tsv_ratio = Vec::new();
    let mut noc_ratio = Vec::new();
    for entry in cache.entries().to_vec() {
        let rn = cache.sim(entry.id, MapKind::Naive);
        let rp = cache.sim(entry.id, MapKind::Proposed);
        let tsv = rp.tsv_bytes as f64 / rn.tsv_bytes.max(1) as f64;
        let noc = if rn.noc_byte_hops == 0 {
            1.0
        } else {
            rp.noc_byte_hops as f64 / rn.noc_byte_hops as f64
        };
        table.push_row(vec![
            entry.id.to_string(),
            entry.name.to_string(),
            fmt(rn.normalized_workload, 3),
            fmt(rp.normalized_workload, 3),
            pct(rn.l1_hit_rate),
            pct(rp.l1_hit_rate),
            pct(rn.l2_hit_rate),
            pct(rp.l2_hit_rate),
            fmt(tsv, 3),
            fmt(noc, 3),
        ]);
        wl_ratio.push(rn.normalized_workload / rp.normalized_workload.max(1e-12));
        l1_n.push(rn.l1_hit_rate);
        l1_p.push(rp.l1_hit_rate);
        l2_n.push(rn.l2_hit_rate);
        l2_p.push(rp.l2_hit_rate);
        tsv_ratio.push(tsv);
        noc_ratio.push(noc);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    table.push_note(format!(
        "naive normalized workload is {} of proposed on average (paper: 81%)",
        pct(mean(&wl_ratio))
    ));
    table.push_note(format!(
        "mean L1 hit rate: naive {} -> proposed {} (paper: 18% -> 78%)",
        pct(mean(&l1_n)),
        pct(mean(&l1_p))
    ));
    table.push_note(format!(
        "mean L2 hit rate: naive {} -> proposed {} (paper: 47.09% -> 31.93%, drops because fewer requests reach L2)",
        pct(mean(&l2_n)),
        pct(mean(&l2_p))
    ));
    table.push_note(format!(
        "mean traffic of proposed relative to naive: TSV {} (paper: 33.11%), NoC {} (paper: 38.89%)",
        pct(mean(&tsv_ratio)),
        pct(mean(&noc_ratio))
    ));

    ExpOutput {
        id: "fig6",
        table,
        extra_tables: vec![],
        headline: vec![
            (
                "naive/proposed normalized workload".into(),
                paper_headline::NAIVE_NORMALIZED_WORKLOAD_RATIO,
                mean(&wl_ratio),
            ),
            ("mean L1 hit rate (naive)".into(), paper_headline::L1_HIT_NAIVE, mean(&l1_n)),
            ("mean L1 hit rate (proposed)".into(), paper_headline::L1_HIT_PROPOSED, mean(&l1_p)),
            ("mean L2 hit rate (naive)".into(), paper_headline::L2_HIT_NAIVE, mean(&l2_n)),
            ("mean L2 hit rate (proposed)".into(), paper_headline::L2_HIT_PROPOSED, mean(&l2_p)),
            (
                "TSV traffic proposed/naive".into(),
                paper_headline::TSV_TRAFFIC_RATIO,
                mean(&tsv_ratio),
            ),
            (
                "NoC traffic proposed/naive".into(),
                paper_headline::NOC_TRAFFIC_RATIO,
                mean(&noc_ratio),
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::context::ExpConfig;

    #[test]
    fn proposed_improves_the_right_metrics() {
        let mut cache = SuiteCache::new(ExpConfig::quick());
        let out = run(&mut cache);
        assert_eq!(out.table.rows.len(), 15);
        let get = |name: &str| {
            out.headline
                .iter()
                .find(|(n, _, _)| n.contains(name))
                .map(|(_, _, v)| *v)
                .expect("headline present")
        };
        // The load-bearing directional claims of Figure 6:
        assert!(
            get("L1 hit rate (proposed)") > get("L1 hit rate (naive)"),
            "proposed mapping must raise L1 hit rate"
        );
        assert!(get("TSV traffic") < 1.0, "proposed mapping must cut TSV traffic");
    }
}
