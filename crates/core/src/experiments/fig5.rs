//! Figure 5: overall speedup and energy saving of SpaceA over the GPU
//! baseline, with the naive and the proposed mapping.

use super::context::{ExpConfig, ExpOutput, MapKind, SuiteCache};
use crate::table::{fmt, geo_mean, pct, Table};
use spacea_harness::JobSpec;
use spacea_matrix::suite;
use spacea_model::reference::paper_headline;

/// The jobs this figure consumes: per matrix, the GPU baseline plus a
/// default-machine simulation under each mapping.
pub fn jobs(cfg: &ExpConfig) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for e in suite::entries() {
        jobs.push(cfg.gpu_job(e.id));
        for kind in [MapKind::Naive, MapKind::Proposed] {
            jobs.push(cfg.sim_job(e.id, kind));
        }
    }
    jobs
}

/// Regenerates the Figure 5 series.
pub fn run(cache: &mut SuiteCache) -> ExpOutput {
    let mut table = Table::new(
        "Figure 5: speedup and energy saving w.r.t. GPU",
        &[
            "ID",
            "Matrix",
            "Speedup (naive)",
            "Speedup (proposed)",
            "Energy saving (naive)",
            "Energy saving (proposed)",
        ],
    );
    let mut sp_naive = Vec::new();
    let mut sp_prop = Vec::new();
    let mut es_naive = Vec::new();
    let mut es_prop = Vec::new();
    for entry in cache.entries().to_vec() {
        let sn = cache.speedup(entry.id, MapKind::Naive);
        let sp = cache.speedup(entry.id, MapKind::Proposed);
        let en = cache.energy_saving(entry.id, MapKind::Naive);
        let ep = cache.energy_saving(entry.id, MapKind::Proposed);
        table.push_row(vec![
            entry.id.to_string(),
            entry.name.to_string(),
            fmt(sn, 2),
            fmt(sp, 2),
            pct(en),
            pct(ep),
        ]);
        sp_naive.push(sn);
        sp_prop.push(sp);
        es_naive.push(en);
        es_prop.push(ep);
    }
    let g_naive = geo_mean(&sp_naive);
    let g_prop = geo_mean(&sp_prop);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let m_es_naive = mean(&es_naive);
    let m_es_prop = mean(&es_prop);
    table.push_row(vec![
        "-".into(),
        "Geo. Mean / Mean".into(),
        fmt(g_naive, 2),
        fmt(g_prop, 2),
        pct(m_es_naive),
        pct(m_es_prop),
    ]);
    table.push_note(format!(
        "paper: naive {}x / proposed {}x speedup; naive {}% / proposed {}% energy saving",
        paper_headline::SPEEDUP_NAIVE,
        paper_headline::SPEEDUP_PROPOSED,
        paper_headline::ENERGY_SAVING_NAIVE * 100.0,
        paper_headline::ENERGY_SAVING_PROPOSED * 100.0
    ));
    table.push_note(format!(
        "mapping contribution: proposed/naive speedup ratio {} (paper: 2.18x)",
        fmt(g_prop / g_naive, 2)
    ));

    ExpOutput {
        id: "fig5",
        table,
        extra_tables: vec![],
        headline: vec![
            ("geo-mean speedup (naive)".into(), paper_headline::SPEEDUP_NAIVE, g_naive),
            ("geo-mean speedup (proposed)".into(), paper_headline::SPEEDUP_PROPOSED, g_prop),
            ("mean energy saving (naive)".into(), paper_headline::ENERGY_SAVING_NAIVE, m_es_naive),
            (
                "mean energy saving (proposed)".into(),
                paper_headline::ENERGY_SAVING_PROPOSED,
                m_es_prop,
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::context::ExpConfig;

    #[test]
    fn spacea_wins_and_proposed_beats_naive() {
        let mut cache = SuiteCache::new(ExpConfig::quick());
        let out = run(&mut cache);
        // 15 matrices + mean row.
        assert_eq!(out.table.rows.len(), 16);
        let g_naive = out.headline[0].2;
        let g_prop = out.headline[1].2;
        assert!(g_prop > 1.0, "SpaceA must beat the GPU (got {g_prop})");
        assert!(g_prop > g_naive, "proposed ({g_prop}) must beat naive ({g_naive})");
    }
}
