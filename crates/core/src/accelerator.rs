//! The public accelerator API.

use spacea_arch::{HwConfig, Machine, RunSpec, SimError, SimReport};
use spacea_mapping::{LocalityMapping, Mapping, MappingStrategy, NaiveMapping};
use spacea_matrix::Csr;
use spacea_model::energy::StaticConfig;
use spacea_model::{EnergyBreakdown, EnergyParams};

/// Which mapping pipeline the accelerator uses.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum MappingChoice {
    /// The paper's proposed two-phase mapping (Algorithm 1 + placement).
    #[default]
    Proposed,
    /// The Section V-B random baseline.
    Naive {
        /// RNG seed for the random row assignment.
        seed: u64,
    },
}

/// Builder for [`Accelerator`].
///
/// # Example
///
/// ```
/// use spacea_core::{Accelerator, MappingChoice};
/// use spacea_arch::HwConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let accel = Accelerator::builder()
///     .hw_config(HwConfig::tiny())
///     .mapping(MappingChoice::Naive { seed: 7 })
///     .build()?;
/// assert_eq!(accel.config().shape.product_pes(), 16);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct AcceleratorBuilder {
    hw: Option<HwConfig>,
    mapping: MappingChoice,
    energy: Option<EnergyParams>,
}

impl AcceleratorBuilder {
    /// Sets the hardware configuration (default: [`HwConfig::scaled`]).
    pub fn hw_config(mut self, hw: HwConfig) -> Self {
        self.hw = Some(hw);
        self
    }

    /// Sets the mapping strategy (default: the proposed mapping).
    pub fn mapping(mut self, choice: MappingChoice) -> Self {
        self.mapping = choice;
        self
    }

    /// Overrides the energy model parameters.
    pub fn energy_params(mut self, params: EnergyParams) -> Self {
        self.energy = Some(params);
        self
    }

    /// Builds the accelerator.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadConfig`] if the hardware configuration is
    /// invalid.
    pub fn build(self) -> Result<Accelerator, SimError> {
        let hw = self.hw.unwrap_or_default();
        hw.validate().map_err(SimError::BadConfig)?;
        Ok(Accelerator {
            machine: Machine::new(hw),
            mapping: self.mapping,
            energy: self.energy.unwrap_or_default(),
        })
    }
}

/// The result of one accelerated SpMV: the simulation report plus the
/// Figure 8 energy breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct AccelRun {
    /// Full simulation report (cycles, traffic, hit rates, validated output).
    pub report: SimReport,
    /// Energy breakdown priced by the energy model.
    pub energy: EnergyBreakdown,
}

/// A configured SpaceA accelerator: machine + mapping strategy + energy
/// model.
#[derive(Debug, Clone)]
pub struct Accelerator {
    machine: Machine,
    mapping: MappingChoice,
    energy: EnergyParams,
}

impl Accelerator {
    /// Starts building an accelerator.
    pub fn builder() -> AcceleratorBuilder {
        AcceleratorBuilder::default()
    }

    /// The machine's hardware configuration.
    pub fn config(&self) -> &HwConfig {
        self.machine.config()
    }

    /// The energy model in use.
    pub fn energy_params(&self) -> &EnergyParams {
        &self.energy
    }

    /// Computes the mapping of `a` onto this machine (the offline
    /// preprocessing step; amortize it by reusing the result across
    /// iterations via [`Accelerator::spmv_mapped`]).
    pub fn map(&self, a: &Csr) -> Mapping {
        match self.mapping {
            MappingChoice::Proposed => LocalityMapping::default().map(a, &self.config().shape),
            MappingChoice::Naive { seed } => NaiveMapping { seed }.map(a, &self.config().shape),
        }
    }

    /// Maps and runs `y = A·x` in one call.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] from the simulation.
    pub fn spmv(&self, a: &Csr, x: &[f64]) -> Result<AccelRun, SimError> {
        let mapping = self.map(a);
        self.spmv_mapped(a, x, &mapping)
    }

    /// Runs `y = A·x` with a precomputed mapping (the iterative-workload
    /// path: map once, run many).
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] from the simulation.
    pub fn spmv_mapped(&self, a: &Csr, x: &[f64], mapping: &Mapping) -> Result<AccelRun, SimError> {
        let report = self.machine.run(RunSpec::spmv(a, x, mapping))?.into_report();
        let energy = self.energy.breakdown(&report.activity, &self.static_config());
        Ok(AccelRun { report, energy })
    }

    /// The structure counts the static-power model needs for this machine.
    pub fn static_config(&self) -> StaticConfig {
        let shape = self.config().shape;
        let layers_per_vault = shape.product_bgs_per_vault + 1; // + vector layer
        StaticConfig {
            banks: shape.vaults() * layers_per_vault * shape.banks_per_bg,
            bank_groups: shape.vaults() * layers_per_vault,
            vaults: shape.vaults(),
            cubes: shape.cubes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spacea_matrix::gen::{banded, BandedConfig};

    fn small() -> Csr {
        banded(&BandedConfig { n: 128, ..Default::default() })
    }

    #[test]
    fn builder_defaults() {
        let accel = Accelerator::builder().hw_config(HwConfig::tiny()).build().unwrap();
        assert_eq!(accel.config().shape.product_pes(), 16);
    }

    #[test]
    fn spmv_end_to_end() {
        let a = small();
        let x = vec![1.0; a.cols()];
        let accel = Accelerator::builder().hw_config(HwConfig::tiny()).build().unwrap();
        let run = accel.spmv(&a, &x).unwrap();
        assert!(run.report.validated);
        assert!(run.energy.total_j() > 0.0);
        // Accumulation order differs from the oracle; compare with tolerance.
        for (sim, exp) in run.report.output.iter().zip(a.spmv(&x)) {
            assert!((sim - exp).abs() <= 1e-9 * exp.abs().max(1.0));
        }
    }

    #[test]
    fn mapped_reuse_matches_one_shot() {
        let a = small();
        let x = vec![2.0; a.cols()];
        let accel = Accelerator::builder().hw_config(HwConfig::tiny()).build().unwrap();
        let mapping = accel.map(&a);
        let r1 = accel.spmv_mapped(&a, &x, &mapping).unwrap();
        let r2 = accel.spmv(&a, &x).unwrap();
        assert_eq!(r1.report.cycles, r2.report.cycles);
    }

    #[test]
    fn naive_choice_used() {
        let a = small();
        let accel = Accelerator::builder()
            .hw_config(HwConfig::tiny())
            .mapping(MappingChoice::Naive { seed: 3 })
            .build()
            .unwrap();
        let m1 = accel.map(&a);
        let m2 = accel.map(&a);
        assert_eq!(m1.assignment, m2.assignment, "same seed, same mapping");
    }

    #[test]
    fn static_config_counts_vector_layer() {
        let accel = Accelerator::builder().hw_config(HwConfig::tiny()).build().unwrap();
        let sc = accel.static_config();
        // tiny: 4 vaults × (2 product + 1 vector) layers × 2 banks.
        assert_eq!(sc.banks, 24);
        assert_eq!(sc.bank_groups, 12);
        assert_eq!(sc.vaults, 4);
        assert_eq!(sc.cubes, 1);
    }

    #[test]
    fn invalid_config_rejected_at_build() {
        let mut hw = HwConfig::tiny();
        hw.l_p = 0;
        assert!(Accelerator::builder().hw_config(hw).build().is_err());
    }
}
