//! High-level API and evaluation framework for the SpaceA reproduction.
//!
//! This crate ties the substrates together:
//!
//! * [`Accelerator`] — the one-stop public API: configure a machine, map a
//!   matrix, run SpMV, get timing + energy.
//! * [`experiments`] — one module per table/figure in the paper's evaluation
//!   (Section V), each producing the same rows/series the paper reports.
//! * [`offload`] — the Section VII execution model: PCIe transfers, host
//!   preprocessing, and the preprocessing-amortization analysis.
//! * [`solvers`] — Jacobi and power iteration driven through the
//!   accelerator (the Section I scientific-computing motivation).
//! * [`table`] — plain-text table rendering shared by the harness binaries.
//!
//! # Example
//!
//! ```
//! use spacea_core::Accelerator;
//! use spacea_matrix::gen::{banded, BandedConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let a = banded(&BandedConfig { n: 256, ..Default::default() });
//! let x = vec![1.0; a.cols()];
//! let accel = Accelerator::builder().build()?;
//! let run = accel.spmv(&a, &x)?;
//! assert!(run.report.validated);
//! assert!(run.energy.total_j() > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod accelerator;
pub mod experiments;
pub mod offload;
pub mod solvers;
pub mod table;

pub use accelerator::{AccelRun, Accelerator, AcceleratorBuilder, MappingChoice};
