//! Plain-text table rendering for the experiment harness.

use std::fmt::Write as _;

/// A rendered experiment artifact: title, column headers, data rows, and
/// free-form notes (e.g. paper-vs-measured commentary).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    /// Table title (e.g. `"Figure 5: speedup and energy saving vs GPU"`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each must have `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
    /// Notes printed under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table with a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width must match headers");
        self.rows.push(cells);
    }

    /// Appends a note line.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Renders the table as aligned monospace text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let rendered: Vec<String> =
                cells.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}", w = w)).collect();
            let _ = writeln!(out, "| {} |", rendered.join(" | "));
        };
        line(&mut out, &self.headers);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "|-{}-|", sep.join("-|-"));
        for row in &self.rows {
            line(&mut out, row);
        }
        for note in &self.notes {
            let _ = writeln!(out, "note: {note}");
        }
        out
    }

    /// Renders the table as CSV (headers first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |cell: &str| {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let _ =
            writeln!(out, "{}", self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        out
    }
}

/// Formats a float with `digits` decimals.
pub fn fmt(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Formats a ratio as a percentage with two decimals.
pub fn pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

/// The geometric mean of a slice (used throughout Section V's "Geo. Mean"
/// columns). Returns 0 for an empty slice; ignores non-positive entries.
pub fn geo_mean(values: &[f64]) -> f64 {
    let positive: Vec<f64> = values.iter().copied().filter(|&v| v > 0.0).collect();
    if positive.is_empty() {
        return 0.0;
    }
    (positive.iter().map(|v| v.ln()).sum::<f64>() / positive.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("T", &["a", "long_header"]);
        t.push_row(vec!["x".into(), "1".into()]);
        let text = t.to_text();
        assert!(text.contains("## T"));
        assert!(text.contains("long_header"));
        assert!(text.lines().count() >= 3);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("T", &["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("T", &["a"]);
        t.push_row(vec!["x,y".into()]);
        assert!(t.to_csv().contains("\"x,y\""));
    }

    #[test]
    fn geo_mean_basics() {
        assert!((geo_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geo_mean(&[]), 0.0);
        assert!((geo_mean(&[5.0, 0.0]) - 5.0).abs() < 1e-12, "non-positive ignored");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(pct(0.5), "50.00%");
    }

    #[test]
    fn notes_rendered() {
        let mut t = Table::new("T", &["a"]);
        t.push_note("hello");
        assert!(t.to_text().contains("note: hello"));
    }
}
