//! Iterative linear solvers on SpaceA.
//!
//! The paper's motivating applications in scientific computing "can be
//! formulated as iterations of matrix-vector multiplication where the matrix
//! is sparse and is reused across multiple runs" (Section I). This module
//! provides the classic examples — Jacobi and power iteration — driving
//! every iteration through the simulated accelerator, with the mapping
//! computed once and amortized.

use crate::accelerator::Accelerator;
use spacea_arch::SimError;
use spacea_matrix::{Coo, Csr, MatrixError};
use std::error::Error;
use std::fmt;

/// Errors from an accelerated solver.
#[derive(Debug)]
#[non_exhaustive]
pub enum SolverError {
    /// The system matrix is unsuitable (non-square, zero diagonal…).
    BadSystem(String),
    /// Dimension mismatch between the matrix and a vector.
    Dimensions(MatrixError),
    /// A device simulation failed.
    Sim(SimError),
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::BadSystem(msg) => write!(f, "unsuitable system: {msg}"),
            SolverError::Dimensions(e) => write!(f, "dimension mismatch: {e}"),
            SolverError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl Error for SolverError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SolverError::BadSystem(_) => None,
            SolverError::Dimensions(e) => Some(e),
            SolverError::Sim(e) => Some(e),
        }
    }
}

impl From<SimError> for SolverError {
    fn from(e: SimError) -> Self {
        SolverError::Sim(e)
    }
}

/// Result of an accelerated iterative solve.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveResult {
    /// The solution (or dominant eigenvector for power iteration).
    pub x: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the tolerance was met before the iteration cap.
    pub converged: bool,
    /// Total simulated device time over all iterations, seconds.
    pub device_seconds: f64,
    /// Total simulated device energy over all iterations, joules.
    pub device_energy_j: f64,
}

/// Solves `A x = b` by Jacobi iteration on the accelerator.
///
/// Splits `A = D + R` and iterates `x' = D⁻¹ (b − R x)`; the `R x` product
/// is the SpMV each iteration offloads. Converges for strictly diagonally
/// dominant systems.
///
/// # Errors
///
/// Returns [`SolverError::BadSystem`] for non-square matrices or zero
/// diagonal entries, and propagates device simulation errors.
pub fn jacobi(
    accel: &Accelerator,
    a: &Csr,
    b: &[f64],
    tolerance: f64,
    max_iterations: usize,
) -> Result<SolveResult, SolverError> {
    #![allow(clippy::needless_range_loop)] // indexed kernels read clearer
    if a.rows() != a.cols() {
        return Err(SolverError::BadSystem("matrix must be square".into()));
    }
    if b.len() != a.rows() {
        return Err(SolverError::BadSystem(format!(
            "rhs has length {} but the system has {} rows",
            b.len(),
            a.rows()
        )));
    }
    let n = a.rows();

    // Split out the diagonal; R keeps the off-diagonal entries.
    let mut diag = vec![0.0f64; n];
    let mut off = Coo::new(n, n);
    off.reserve(a.nnz());
    for i in 0..n {
        for (j, v) in a.row(i) {
            if j as usize == i {
                diag[i] += v;
            } else {
                // lint:allow(R1) indices come from a validated Csr
                off.push(i, j as usize, v).expect("entry in bounds");
            }
        }
    }
    if let Some(i) = diag.iter().position(|d| d.abs() < 1e-300) {
        return Err(SolverError::BadSystem(format!("zero diagonal at row {i}")));
    }
    let r = off.to_csr();
    let mapping = accel.map(&r);

    let mut x = vec![0.0f64; n];
    let mut iterations = 0;
    let mut converged = false;
    let mut device_seconds = 0.0;
    let mut device_energy = 0.0;
    while iterations < max_iterations {
        iterations += 1;
        let run = accel.spmv_mapped(&r, &x, &mapping)?;
        device_seconds += run.report.seconds;
        device_energy += run.energy.total_j();
        let mut delta = 0.0f64;
        for i in 0..n {
            let next = (b[i] - run.report.output[i]) / diag[i];
            delta = delta.max((next - x[i]).abs());
            x[i] = next;
        }
        if delta < tolerance {
            converged = true;
            break;
        }
    }
    Ok(SolveResult { x, iterations, converged, device_seconds, device_energy_j: device_energy })
}

/// Power iteration: the dominant eigenvector of `A`, normalized to unit
/// 2-norm, every multiply running on the accelerator.
///
/// # Errors
///
/// Returns [`SolverError::BadSystem`] for non-square or empty matrices, and
/// propagates device simulation errors.
pub fn power_iteration(
    accel: &Accelerator,
    a: &Csr,
    tolerance: f64,
    max_iterations: usize,
) -> Result<SolveResult, SolverError> {
    if a.rows() != a.cols() {
        return Err(SolverError::BadSystem("matrix must be square".into()));
    }
    if a.rows() == 0 {
        return Err(SolverError::BadSystem("matrix is empty".into()));
    }
    let n = a.rows();
    let mapping = accel.map(a);

    let mut x = vec![1.0 / (n as f64).sqrt(); n];
    let mut iterations = 0;
    let mut converged = false;
    let mut device_seconds = 0.0;
    let mut device_energy = 0.0;
    while iterations < max_iterations {
        iterations += 1;
        let run = accel.spmv_mapped(a, &x, &mapping)?;
        device_seconds += run.report.seconds;
        device_energy += run.energy.total_j();
        let y = run.report.output;
        let norm = y.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm < 1e-300 {
            return Err(SolverError::BadSystem("matrix annihilated the iterate".into()));
        }
        let next: Vec<f64> = y.iter().map(|v| v / norm).collect();
        let delta: f64 = next.iter().zip(&x).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
        x = next;
        if delta < tolerance {
            converged = true;
            break;
        }
    }
    Ok(SolveResult { x, iterations, converged, device_seconds, device_energy_j: device_energy })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spacea_arch::HwConfig;
    use spacea_matrix::Coo;

    fn accel() -> Accelerator {
        Accelerator::builder().hw_config(HwConfig::tiny()).build().unwrap()
    }

    /// A strictly diagonally dominant tridiagonal system.
    fn tridiag(n: usize) -> Csr {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0).unwrap();
            if i > 0 {
                coo.push(i, i - 1, -1.0).unwrap();
            }
            if i + 1 < n {
                coo.push(i, i + 1, -1.0).unwrap();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn jacobi_solves_dominant_system() {
        let a = tridiag(64);
        let x_true: Vec<f64> = (0..64).map(|i| ((i % 5) as f64) - 2.0).collect();
        let b = a.spmv(&x_true);
        let r = jacobi(&accel(), &a, &b, 1e-10, 200).unwrap();
        assert!(r.converged, "jacobi must converge on a dominant system");
        for (got, want) in r.x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-8, "{got} vs {want}");
        }
        assert!(r.device_seconds > 0.0);
        assert!(r.device_energy_j > 0.0);
    }

    #[test]
    fn jacobi_rejects_zero_diagonal() {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 1, 1.0).unwrap();
        coo.push(1, 0, 1.0).unwrap();
        let err = jacobi(&accel(), &coo.to_csr(), &[1.0, 1.0], 1e-9, 10).unwrap_err();
        assert!(matches!(err, SolverError::BadSystem(_)));
    }

    #[test]
    fn jacobi_rejects_bad_rhs() {
        let a = tridiag(8);
        assert!(jacobi(&accel(), &a, &[1.0; 3], 1e-9, 10).is_err());
    }

    #[test]
    fn power_iteration_finds_dominant_eigenvector() {
        // Diagonal matrix: dominant eigenvector is e_0.
        let mut coo = Coo::new(16, 16);
        for i in 0..16 {
            coo.push(i, i, if i == 0 { 10.0 } else { 1.0 }).unwrap();
        }
        let r = power_iteration(&accel(), &coo.to_csr(), 1e-10, 300).unwrap();
        assert!(r.converged);
        assert!(r.x[0].abs() > 0.999, "e0 component {}", r.x[0]);
    }

    #[test]
    fn iteration_cap_respected() {
        let a = tridiag(32);
        let b = vec![1.0; 32];
        let r = jacobi(&accel(), &a, &b, 0.0, 3).unwrap();
        assert_eq!(r.iterations, 3);
        assert!(!r.converged);
    }
}
