//! The offload execution model (paper Section VII, "System and programming
//! interface").
//!
//! SpaceA is a standalone accelerator on the PCIe bus: a host program
//! allocates device memory, copies the sparse matrix and input vector in,
//! invokes SpMV, and copies the output vector back. The sparse matrix is
//! pre-processed on the CPU (the mapping) before transfer. This module
//! models that pipeline and quantifies the paper's amortization argument:
//! the one-time preprocessing + transfer cost is recovered over the many
//! iterations these applications run ("the overhead of offline preprocessing
//! is well-amortized").

use crate::accelerator::{AccelRun, Accelerator};
use spacea_arch::SimError;
use spacea_mapping::Mapping;
use spacea_matrix::Csr;

/// A PCIe interconnect model for host ↔ accelerator transfers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcieModel {
    /// Sustained transfer bandwidth in bytes/s (PCIe 3.0 x16 ≈ 12.8 GB/s
    /// effective).
    pub bandwidth: f64,
    /// Per-transfer latency in seconds (driver + DMA setup).
    pub latency_s: f64,
}

impl Default for PcieModel {
    fn default() -> Self {
        PcieModel { bandwidth: 12.8e9, latency_s: 10e-6 }
    }
}

impl PcieModel {
    /// Time to move `bytes` across the bus.
    pub fn transfer_s(&self, bytes: usize) -> f64 {
        self.latency_s + bytes as f64 / self.bandwidth
    }
}

/// Host-side preprocessing cost model: the mapping algorithm runs on the CPU
/// at an effective rate of score evaluations per second.
///
/// Algorithm 1 is `O(P · nnz · log nnz)` in the paper's bound; the measured
/// wall time of this crate's implementation is used directly (it *is* a CPU
/// implementation), so no synthetic model is needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HostPreprocess;

/// The cost breakdown of one offloaded SpMV workload.
#[derive(Debug, Clone, PartialEq)]
pub struct OffloadReport {
    /// Host preprocessing (mapping) wall time, seconds.
    pub preprocess_s: f64,
    /// Matrix + input vector transfer time, seconds.
    pub transfer_in_s: f64,
    /// Simulated device time for ONE SpMV iteration, seconds.
    pub iteration_s: f64,
    /// Output vector transfer time, seconds.
    pub transfer_out_s: f64,
    /// The device run of the measured iteration.
    pub run: AccelRun,
}

impl OffloadReport {
    /// One-time setup cost (preprocessing + input transfer).
    pub fn setup_s(&self) -> f64 {
        self.preprocess_s + self.transfer_in_s
    }

    /// Total time for `iterations` iterations of SpMV, including setup and
    /// the final result copy-back. Intermediate vectors stay on the device
    /// (X and Y are co-located, Section III-A).
    pub fn total_s(&self, iterations: usize) -> f64 {
        self.setup_s() + self.iteration_s * iterations as f64 + self.transfer_out_s
    }

    /// Iterations needed before the setup overhead drops below `fraction` of
    /// total time. Returns `None` if a single iteration already satisfies it.
    pub fn amortization_iterations(&self, fraction: f64) -> Option<usize> {
        assert!(fraction > 0.0 && fraction < 1.0, "fraction must be in (0, 1)");
        // setup <= fraction * (setup + iters * iter_s)  =>
        // iters >= setup * (1 - fraction) / (fraction * iter_s)
        let need = self.setup_s() * (1.0 - fraction) / (fraction * self.iteration_s);
        if need <= 1.0 {
            None
        } else {
            Some(need.ceil() as usize)
        }
    }
}

/// Runs the full offload pipeline: host preprocessing (measured), transfers
/// (modelled), and one simulated device iteration.
///
/// # Errors
///
/// Propagates simulation errors from the device run.
pub fn offload_spmv(
    accel: &Accelerator,
    pcie: &PcieModel,
    a: &Csr,
    x: &[f64],
) -> Result<OffloadReport, SimError> {
    // lint:allow(D2) measures real host preprocessing time; sim cycles are unaffected
    let t0 = std::time::Instant::now();
    let mapping = accel.map(a);
    let preprocess_s = t0.elapsed().as_secs_f64();
    offload_spmv_mapped(accel, pcie, a, x, &mapping, preprocess_s)
}

/// The same pipeline with a precomputed mapping and an externally measured
/// preprocessing time (lets callers amortize mapping across experiments
/// without re-measuring).
///
/// # Errors
///
/// Propagates simulation errors from the device run.
pub fn offload_spmv_mapped(
    accel: &Accelerator,
    pcie: &PcieModel,
    a: &Csr,
    x: &[f64],
    mapping: &Mapping,
    preprocess_s: f64,
) -> Result<OffloadReport, SimError> {
    let run = accel.spmv_mapped(a, x, mapping)?;
    // The device image of the matrix: packed DRAM rows (4 B header + 12 B
    // per non-zero, padded to row granularity) — slightly larger than CSR.
    let matrix_bytes = a.csr_bytes() + a.rows() * 4;
    let vec_bytes = a.cols() * 8;
    Ok(OffloadReport {
        preprocess_s,
        transfer_in_s: pcie.transfer_s(matrix_bytes + vec_bytes),
        iteration_s: run.report.seconds,
        transfer_out_s: pcie.transfer_s(a.rows() * 8),
        run,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spacea_arch::HwConfig;
    use spacea_matrix::gen::{banded, BandedConfig};

    fn setup() -> (Accelerator, Csr, Vec<f64>) {
        let a = banded(&BandedConfig { n: 256, ..Default::default() });
        let x = vec![1.0; a.cols()];
        let accel = Accelerator::builder().hw_config(HwConfig::tiny()).build().unwrap();
        (accel, a, x)
    }

    #[test]
    fn pipeline_produces_positive_costs() {
        let (accel, a, x) = setup();
        let r = offload_spmv(&accel, &PcieModel::default(), &a, &x).unwrap();
        assert!(r.preprocess_s >= 0.0);
        assert!(r.transfer_in_s > 0.0);
        assert!(r.iteration_s > 0.0);
        assert!(r.transfer_out_s > 0.0);
        assert!(r.run.report.validated);
    }

    #[test]
    fn total_scales_with_iterations() {
        let (accel, a, x) = setup();
        let r = offload_spmv(&accel, &PcieModel::default(), &a, &x).unwrap();
        let t10 = r.total_s(10);
        let t20 = r.total_s(20);
        assert!((t20 - t10 - 10.0 * r.iteration_s).abs() < 1e-12);
    }

    #[test]
    fn amortization_threshold_monotone() {
        let (accel, a, x) = setup();
        let r = offload_spmv(&accel, &PcieModel::default(), &a, &x).unwrap();
        // Setup dominates one simulated iteration by orders of magnitude,
        // so amortizing to 10% takes more iterations than to 50%.
        let strict = r.amortization_iterations(0.1).unwrap_or(1);
        let loose = r.amortization_iterations(0.5).unwrap_or(1);
        assert!(strict >= loose);
    }

    #[test]
    fn pcie_transfer_time_model() {
        let p = PcieModel { bandwidth: 1e9, latency_s: 1e-6 };
        assert!((p.transfer_s(1_000_000) - (1e-6 + 1e-3)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "fraction must be in")]
    fn bad_fraction_panics() {
        let (accel, a, x) = setup();
        let r = offload_spmv(&accel, &PcieModel::default(), &a, &x).unwrap();
        r.amortization_iterations(1.5);
    }
}
