//! End-to-end contracts between the experiment registry and the parallel
//! harness: job enumerations cover everything rendering consumes, parallel
//! pre-warming is byte-identical to serial execution, and a warm store
//! serves a second run entirely from cache.

use spacea_core::experiments::{self, ExpConfig, SuiteCache};
use spacea_harness::{run_jobs, JobCtx, ResultStore};
use std::sync::Arc;

fn render(cache: &mut SuiteCache) -> String {
    experiments::render_all(&experiments::run_all(cache))
}

#[test]
fn registry_ids_are_unique_and_jobs_nonempty() {
    let reg = experiments::registry();
    assert_eq!(reg.len(), 12);
    let mut ids: Vec<&str> = reg.iter().map(|e| e.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 12, "duplicate experiment ids");
    let jobs = experiments::all_jobs(&ExpConfig::quick());
    assert!(jobs.len() > 100, "full evaluation should enumerate many jobs, got {}", jobs.len());
    // Deduplication is part of the contract: fig5/fig6/fig8 overlap.
    let mut keys: Vec<u64> = jobs.iter().map(|j| j.key().0).collect();
    keys.sort_unstable();
    keys.dedup();
    assert_eq!(keys.len(), jobs.len(), "all_jobs must be deduplicated");
}

#[test]
fn prewarmed_store_covers_every_render_lookup() {
    let cfg = ExpConfig::quick();
    let store = Arc::new(ResultStore::in_memory());
    let ctx = Arc::new(JobCtx::new());
    let jobs = experiments::all_jobs(&cfg);
    run_jobs(&jobs, &store, &ctx, 4);
    let misses_before = store.stats().misses;
    let mut cache = SuiteCache::with_store(cfg, Arc::clone(&store), ctx);
    let text = render(&mut cache);
    assert!(!text.is_empty());
    assert_eq!(
        store.stats().misses,
        misses_before,
        "rendering must not compute anything the job enumeration missed"
    );
}

#[test]
fn four_workers_render_byte_identical_to_one_worker() {
    let run_with_workers = |workers: usize| {
        let cfg = ExpConfig::quick();
        let store = Arc::new(ResultStore::in_memory());
        let ctx = Arc::new(JobCtx::new());
        run_jobs(&experiments::all_jobs(&cfg), &store, &ctx, workers);
        let mut cache = SuiteCache::with_store(cfg, store, ctx);
        render(&mut cache)
    };
    assert_eq!(run_with_workers(1), run_with_workers(4));
}

#[test]
fn second_run_over_a_warm_store_is_all_hits() {
    let cfg = ExpConfig::quick();
    let store = Arc::new(ResultStore::in_memory());
    let ctx = Arc::new(JobCtx::new());
    let jobs = experiments::all_jobs(&cfg);
    run_jobs(&jobs, &store, &ctx, 2);
    let records = run_jobs(&jobs, &store, &ctx, 2);
    assert!(
        records.iter().all(|r| r.outcome == spacea_harness::CacheOutcome::MemoryHit),
        "second run must be served entirely from the store"
    );
}
