//! The bit-exact reproducibility contract behind `spacea-lint`'s D-rules:
//! two independent runs of the same job list — fresh stores, fresh contexts,
//! different worker counts — must agree on every cache key, every cycle
//! count, and every entry of the activity ledger. This is the dynamic twin
//! of the static pass: rules D1/D2 forbid the usual nondeterminism sources
//! (hash-ordered collections, wall clock, ambient RNG) in model crates, and
//! this test double-runs the stack to catch anything the scanner cannot see.

use spacea_arch::HwConfig;
use spacea_gpu::TitanXpSpec;
use spacea_harness::{run_jobs, JobCtx, JobRecord, JobSpec, MatrixSource, ResultStore};
use spacea_mapping::MapKind;
use spacea_model::EnergyParams;
use spacea_sim::engine::EventQueue;
use spacea_sim::workload::{run_workload, standard_workloads};
use std::sync::Arc;

/// A small mixed job list: both mappings of two suite matrices on the tiny
/// machine, plus a GPU baseline job (exercises the non-sim result path).
fn jobs() -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for id in [1u8, 3] {
        for kind in [MapKind::Naive, MapKind::Proposed] {
            jobs.push(JobSpec::Sim {
                source: MatrixSource::Suite { id, scale: 256 },
                kind,
                hw: HwConfig::tiny(),
                energy: EnergyParams::default(),
            });
        }
    }
    jobs.push(JobSpec::Gpu {
        source: MatrixSource::Suite { id: 1, scale: 256 },
        spec: TitanXpSpec::default(),
    });
    jobs
}

/// Runs the job list into a fresh in-memory store with a fresh context and
/// returns the run's records plus its store.
fn run_once(workers: usize) -> (Vec<JobRecord>, Arc<ResultStore>) {
    let store = Arc::new(ResultStore::in_memory());
    let ctx = Arc::new(JobCtx::new());
    let records = run_jobs(&jobs(), &store, &ctx, workers);
    (records, store)
}

#[test]
fn double_run_is_bit_identical() {
    let (first, store_a) = run_once(1);
    let (second, store_b) = run_once(4);

    // Same jobs hash to the same content keys, in the same order.
    let keys_a: Vec<u64> = first.iter().map(|r| r.key.0).collect();
    let keys_b: Vec<u64> = second.iter().map(|r| r.key.0).collect();
    assert_eq!(keys_a, keys_b, "job keys must not depend on the run");

    for (r1, r2) in first.iter().zip(&second) {
        let a = store_a.lookup(r1.key).map(|(res, _)| res);
        let b = store_b.lookup(r2.key).map(|(res, _)| res);
        let (a, b) = (a.expect("first run cached"), b.expect("second run cached"));
        match (&a, &b) {
            (spacea_harness::JobResult::Sim(ra), spacea_harness::JobResult::Sim(rb)) => {
                assert_eq!(ra.cycles, rb.cycles, "{}: cycles differ", r1.label);
                assert_eq!(
                    ra.events_processed, rb.events_processed,
                    "{}: event counts differ",
                    r1.label
                );
                assert_eq!(
                    ra.events_scheduled, rb.events_scheduled,
                    "{}: event counts differ",
                    r1.label
                );
                // The full ledger, field by field — any hash-ordered
                // iteration or wall-clock leak shows up here first.
                assert_eq!(ra.activity, rb.activity, "{}: activity ledgers differ", r1.label);
                assert_eq!(ra.pe_work, rb.pe_work, "{}: per-PE work differs", r1.label);
                assert_eq!(ra.tsv_bytes, rb.tsv_bytes, "{}: TSV bytes differ", r1.label);
                assert_eq!(ra.noc_byte_hops, rb.noc_byte_hops, "{}: NoC traffic differs", r1.label);
                assert_eq!(
                    ra.output.iter().map(|v| v.to_bits()).collect::<Vec<u64>>(),
                    rb.output.iter().map(|v| v.to_bits()).collect::<Vec<u64>>(),
                    "{}: output vectors differ bitwise",
                    r1.label
                );
                assert!(ra.validated && rb.validated, "{}: oracle mismatch", r1.label);
            }
            (spacea_harness::JobResult::Gpu(ga), spacea_harness::JobResult::Gpu(gb)) => {
                assert_eq!(ga, gb, "{}: GPU runs differ", r1.label);
            }
            _ => panic!("{}: result kinds differ between runs", r1.label),
        }
    }
}

/// The `engine_bench` workload suite is part of the same contract: replaying
/// a workload on a fresh calendar queue must reproduce the event count and
/// the FNV checksum over the delivered `(cycle, payload)` stream exactly —
/// the numbers pinned in `BENCH_engine.json` and ratcheted by CI.
#[test]
fn engine_bench_workloads_double_run_identically() {
    for w in standard_workloads() {
        let first = run_workload(&w, &mut EventQueue::new());
        let second = run_workload(&w, &mut EventQueue::new());
        assert_eq!(first, second, "workload {} is not reproducible", w.name);
        assert!(first.events >= w.rounds, "workload {} under-delivered", w.name);
    }
}
