//! Mapping-quality metrics (paper Section V-C).

use crate::placement::pe_column_sets;
use crate::{MachineShape, Mapping, RowAssignment};
use spacea_matrix::Csr;

/// The paper's *normalized workload*: the ratio of the mean PE workload to
/// the maximum PE workload (higher is better; 1.0 is perfectly balanced).
///
/// "the performance ... is bounded by the slowest PE", so the denominator is
/// the busiest PE's non-zero count.
pub fn normalized_workload(assignment: &RowAssignment, matrix: &Csr) -> f64 {
    let w = assignment.workloads(|r| matrix.row_nnz(r));
    let max = w.iter().copied().max().unwrap_or(0);
    if max == 0 {
        return 1.0;
    }
    let mean = w.iter().sum::<usize>() as f64 / w.len() as f64;
    mean / max as f64
}

/// The maximum number of unique column indexes over all groups of `k`
/// consecutive physical slots — Formula 1's objective `F(C)`, evaluated on a
/// placed mapping.
///
/// With `k = banks_per_bg` this measures bank-group-level locality (what the
/// shared L1 CAM sees); with `k = banks per vault` it measures vault-level
/// locality (what the L2 CAM sees).
pub fn max_unique_columns(mapping: &Mapping, matrix: &Csr, k: usize) -> usize {
    assert!(k > 0, "group size must be positive");
    let sets = pe_column_sets(matrix, &mapping.assignment);
    let mut max = 0usize;
    let slots = mapping.placement.len();
    let mut group_union: Vec<u32> = Vec::new();
    for start in (0..slots).step_by(k) {
        group_union.clear();
        for slot in start..(start + k).min(slots) {
            let pe = mapping.placement.logical_at_slot(slot) as usize;
            group_union.extend(sets[pe].iter().copied());
        }
        group_union.sort_unstable();
        group_union.dedup();
        max = max.max(group_union.len());
    }
    max
}

/// Convenience: the bank-group-level `F(C)` for a mapping on a shape.
pub fn max_unique_columns_per_bank_group(
    mapping: &Mapping,
    matrix: &Csr,
    shape: &MachineShape,
) -> usize {
    max_unique_columns(mapping, matrix, shape.banks_per_bg)
}

/// Convenience: the vault-level `F(C)` for a mapping on a shape.
pub fn max_unique_columns_per_vault(
    mapping: &Mapping,
    matrix: &Csr,
    shape: &MachineShape,
) -> usize {
    max_unique_columns(mapping, matrix, shape.banks_per_bg * shape.product_bgs_per_vault)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LocalityMapping, MappingStrategy, NaiveMapping};
    use spacea_matrix::gen::{banded, BandedConfig};

    #[test]
    fn perfectly_balanced_is_one() {
        let a = RowAssignment::new(vec![vec![0], vec![1]], 2);
        let m = spacea_matrix::Csr::from_parts(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 1.0])
            .unwrap();
        assert!((normalized_workload(&a, &m) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_lowers_ratio() {
        // PE0 has 3 nnz, PE1 has 1 → mean 2, max 3 → 2/3.
        let m = spacea_matrix::Csr::from_parts(2, 4, vec![0, 3, 4], vec![0, 1, 2, 3], vec![1.0; 4])
            .unwrap();
        let a = RowAssignment::new(vec![vec![0], vec![1]], 2);
        assert!((normalized_workload(&a, &m) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_assignment_is_one() {
        let m = spacea_matrix::Csr::from_parts(1, 1, vec![0, 0], vec![], vec![]).unwrap();
        let a = RowAssignment::new(vec![vec![0]], 1);
        assert_eq!(normalized_workload(&a, &m), 1.0);
    }

    #[test]
    fn proposed_mapping_improves_locality_metric() {
        let m = banded(&BandedConfig { n: 512, mean_row_nnz: 24.0, ..Default::default() });
        let shape = MachineShape::tiny();
        let prop = LocalityMapping::default().map(&m, &shape);
        let naive = NaiveMapping::default().map(&m, &shape);
        let f_prop = max_unique_columns_per_bank_group(&prop, &m, &shape);
        let f_naive = max_unique_columns_per_bank_group(&naive, &m, &shape);
        assert!(f_prop < f_naive, "proposed F(C)={f_prop} must beat naive F(C)={f_naive}");
    }

    #[test]
    fn vault_metric_at_least_bank_group_metric() {
        let m = banded(&BandedConfig { n: 256, ..Default::default() });
        let shape = MachineShape::tiny();
        let prop = LocalityMapping::default().map(&m, &shape);
        assert!(
            max_unique_columns_per_vault(&prop, &m, &shape)
                >= max_unique_columns_per_bank_group(&prop, &m, &shape)
        );
    }
}
