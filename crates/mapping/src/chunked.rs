//! Contiguous equal-work row partitioning — the classic CPU/GPU SpMV
//! decomposition, as a third point between the random baseline and the
//! paper's locality mapping.
//!
//! Chunked assignment inherits whatever locality the matrix ordering has
//! (excellent for banded FEM matrices, poor for scattered ones) but cannot
//! regroup similar rows the way Algorithm 1 does, and its balance is limited
//! by row granularity. It is used by the ablation harness to separate "any
//! locality" from "optimized locality".

use crate::placement::Placement;
use crate::{MachineShape, Mapping, MappingStrategy, RowAssignment};
use spacea_matrix::Csr;

/// Contiguous row chunks of approximately equal non-zero counts, placed in
/// id order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChunkedMapping;

impl MappingStrategy for ChunkedMapping {
    fn map(&self, matrix: &Csr, shape: &MachineShape) -> Mapping {
        let assignment = assign_rows_chunked(matrix, shape.product_pes());
        let placement = Placement::identity(shape.product_pes());
        Mapping { assignment, placement }
    }

    fn name(&self) -> &'static str {
        "chunked"
    }
}

/// Splits rows into `num_pes` contiguous chunks with balanced non-zero
/// counts (greedy: close a chunk once it reaches the per-PE budget).
///
/// # Panics
///
/// Panics if `num_pes == 0`.
pub fn assign_rows_chunked(matrix: &Csr, num_pes: usize) -> RowAssignment {
    assert!(num_pes > 0, "need at least one PE");
    let budget = (matrix.nnz() as f64 / num_pes as f64).max(1.0);
    let mut rows_of: Vec<Vec<u32>> = vec![Vec::new(); num_pes];
    let mut pid = 0usize;
    let mut acc = 0usize;
    for i in 0..matrix.rows() {
        rows_of[pid].push(i as u32);
        acc += matrix.row_nnz(i);
        // Advance once the chunk is full, but keep the last PE open so every
        // row lands somewhere.
        if acc as f64 >= budget && pid + 1 < num_pes {
            pid += 1;
            acc = 0;
        }
    }
    RowAssignment::new(rows_of, matrix.rows())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::normalized_workload;
    use spacea_matrix::gen::{banded, rmat, BandedConfig, RmatConfig};

    #[test]
    fn partitions_all_rows_contiguously() {
        let m = banded(&BandedConfig { n: 333, ..Default::default() });
        let a = assign_rows_chunked(&m, 16);
        a.validate().unwrap();
        // Chunks must be contiguous and ordered.
        let mut last = -1i64;
        for pid in 0..16 {
            for &r in a.rows_of(pid) {
                assert_eq!(r as i64, last + 1, "rows must be contiguous in PE order");
                last = r as i64;
            }
        }
    }

    #[test]
    fn roughly_balanced_on_uniform_rows() {
        let m = banded(&BandedConfig { n: 640, stddev_row_nnz: 1.0, ..Default::default() });
        let a = assign_rows_chunked(&m, 8);
        let w = normalized_workload(&a, &m);
        assert!(w > 0.8, "uniform rows should balance well, got {w}");
    }

    #[test]
    fn single_pe_takes_all() {
        let m = banded(&BandedConfig { n: 64, ..Default::default() });
        let a = assign_rows_chunked(&m, 1);
        assert_eq!(a.rows_of(0).len(), 64);
    }

    #[test]
    fn skewed_matrix_balances_worse_than_uniform() {
        let skewed = rmat(&RmatConfig { n: 1024, edges: 8192, ..Default::default() });
        let uniform = banded(&BandedConfig { n: 1024, stddev_row_nnz: 0.5, ..Default::default() });
        let ws = normalized_workload(&assign_rows_chunked(&skewed, 16), &skewed);
        let wu = normalized_workload(&assign_rows_chunked(&uniform, 16), &uniform);
        assert!(ws < wu, "skewed ({ws}) must balance worse than uniform ({wu})");
    }

    #[test]
    fn strategy_name() {
        assert_eq!(ChunkedMapping.name(), "chunked");
    }
}
