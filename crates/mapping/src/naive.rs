//! The naive mapping baseline of Section V-B: rows are assigned to PEs at
//! random and logical PEs are placed in id order.

use crate::placement::Placement;
use crate::{MachineShape, Mapping, MappingStrategy, RowAssignment};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spacea_matrix::Csr;

/// The seed used by [`NaiveMapping::default`]; fixed so runs are
/// reproducible.
pub const DEFAULT_SEED: u64 = 0x5ACE_A0BA;

/// Random row→PE assignment with identity placement.
///
/// The paper: "The results of SpaceA shown in Figure 5 uses a naive mapping
/// which randomly assigns rows from the sparse matrix to PEs."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NaiveMapping {
    /// RNG seed; fixed so runs are reproducible.
    pub seed: u64,
}

impl NaiveMapping {
    /// A naive mapping with an explicit seed.
    pub const fn with_seed(seed: u64) -> Self {
        NaiveMapping { seed }
    }
}

impl Default for NaiveMapping {
    fn default() -> Self {
        NaiveMapping::with_seed(DEFAULT_SEED)
    }
}

impl MappingStrategy for NaiveMapping {
    fn map(&self, matrix: &Csr, shape: &MachineShape) -> Mapping {
        let assignment = assign_rows_naive(matrix, shape.product_pes(), self.seed);
        let placement = Placement::identity(shape.product_pes());
        Mapping { assignment, placement }
    }

    fn name(&self) -> &'static str {
        "naive"
    }
}

/// Assigns each row to a uniformly random PE.
///
/// # Panics
///
/// Panics if `num_pes == 0`.
pub fn assign_rows_naive(matrix: &Csr, num_pes: usize, seed: u64) -> RowAssignment {
    assert!(num_pes > 0, "need at least one PE");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut rows_of: Vec<Vec<u32>> = vec![Vec::new(); num_pes];
    for i in 0..matrix.rows() {
        rows_of[rng.gen_range(0..num_pes)].push(i as u32);
    }
    RowAssignment::new(rows_of, matrix.rows())
}

#[cfg(test)]
mod tests {
    use super::*;
    use spacea_matrix::gen::{uniform_random, UniformConfig};

    #[test]
    fn partitions_all_rows() {
        let m = uniform_random(&UniformConfig { rows: 500, cols: 100, row_nnz: 4, seed: 2 });
        let a = assign_rows_naive(&m, 16, 7);
        a.validate().unwrap();
    }

    #[test]
    fn deterministic_for_seed() {
        let m = uniform_random(&UniformConfig::default());
        assert_eq!(assign_rows_naive(&m, 8, 1), assign_rows_naive(&m, 8, 1));
        assert_ne!(assign_rows_naive(&m, 8, 1), assign_rows_naive(&m, 8, 2));
    }

    #[test]
    fn spreads_rows_roughly_uniformly() {
        let m = uniform_random(&UniformConfig { rows: 8000, cols: 64, row_nnz: 2, seed: 5 });
        let a = assign_rows_naive(&m, 8, 11);
        for pid in 0..8 {
            let n = a.rows_of(pid).len();
            assert!((700..1300).contains(&n), "PE {pid} got {n} rows");
        }
    }

    #[test]
    fn strategy_produces_identity_placement() {
        let m = uniform_random(&UniformConfig { rows: 40, cols: 10, row_nnz: 2, seed: 1 });
        let shape = MachineShape::tiny();
        let mapping = NaiveMapping::default().map(&m, &shape);
        assert_eq!(mapping.placement.logical_at_slot(0), 0);
        assert_eq!(mapping.placement.logical_at_slot(15), 15);
        assert_eq!(NaiveMapping::default().name(), "naive");
    }
}
