//! Phase I: row assignment to logical PEs (the paper's Algorithm 1).
//!
//! For each row `i` (in order), every PE `pid` is scored:
//!
//! * if assigning the row would push the PE past the balanced budget
//!   `nnz_bar = nnz / #PEs`, the score is the penalty
//!   `-(W_pid + N_i - nnz_bar) * K` with a large constant `K`;
//! * otherwise the score is `max(Overlap / N_i, 1 / W_pid)` where `Overlap`
//!   is the column-index overlap `|C_i ∩ COL_pid|` — locality first, with the
//!   `1/W` term steering rows that overlap nowhere towards lightly-loaded
//!   PEs.
//!
//! The row goes to the highest-scoring PE (lowest id wins ties, keeping the
//! algorithm fully deterministic).
//!
//! The implementation uses an inverted index (column → PEs that already hold
//! the column) so each row only scores PEs with non-zero overlap plus the
//! single least-loaded PE, rather than scanning all `P` PEs; this matches the
//! paper's score exactly while staying near the `O(P · nnz · log nnz)` bound
//! discussed in Section IV-B.

use crate::placement::cluster_hierarchy;
use crate::{MachineShape, Mapping, MappingStrategy, RowAssignment};
use spacea_matrix::Csr;
use std::collections::BTreeSet;

/// The paper's proposed mapping: Algorithm 1 followed by the Phase II
/// placement heuristic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalityMapping {
    /// The penalty constant `K` ("a large constant value" in Algorithm 1).
    pub penalty: f64,
}

impl LocalityMapping {
    /// The configuration used throughout the paper's evaluation.
    pub const fn paper_defaults() -> Self {
        LocalityMapping { penalty: 1e6 }
    }
}

impl Default for LocalityMapping {
    fn default() -> Self {
        LocalityMapping::paper_defaults()
    }
}

impl MappingStrategy for LocalityMapping {
    fn map(&self, matrix: &Csr, shape: &MachineShape) -> Mapping {
        let assignment = assign_rows(matrix, shape.product_pes(), self.penalty);
        let placement = cluster_hierarchy(matrix, &assignment, shape);
        Mapping { assignment, placement }
    }

    fn name(&self) -> &'static str {
        "proposed"
    }
}

/// Runs Algorithm 1: assigns every row of `matrix` to one of `num_pes`
/// logical PEs.
///
/// # Panics
///
/// Panics if `num_pes == 0`.
pub fn assign_rows(matrix: &Csr, num_pes: usize, penalty: f64) -> RowAssignment {
    assert!(num_pes > 0, "need at least one PE");
    let nnz_bar = (matrix.nnz() as f64 / num_pes as f64).ceil().max(1.0);

    let mut rows_of: Vec<Vec<u32>> = vec![Vec::new(); num_pes];
    let mut workload: Vec<usize> = vec![0; num_pes];
    // col_pes[c] = sorted set of PEs whose COL set contains column c.
    let mut col_pes: Vec<Vec<u32>> = vec![Vec::new(); matrix.cols()];
    // (workload, pid) ordering gives the least-loaded PE with lowest id.
    let mut by_load: BTreeSet<(usize, u32)> = (0..num_pes as u32).map(|p| (0, p)).collect();
    // Dense per-row scratch: overlap count per PE, plus a touched list.
    let mut overlap: Vec<u32> = vec![0; num_pes];
    let mut touched: Vec<u32> = Vec::new();

    for i in 0..matrix.rows() {
        let cols = matrix.row_cols(i);
        let n_i = cols.len();
        if n_i == 0 {
            // Empty rows carry no work; park them on the least-loaded PE
            // (with zero PEs there is nowhere to park, and nothing to do).
            if let Some(&(_, pid)) = by_load.iter().next() {
                rows_of[pid as usize].push(i as u32);
            }
            continue;
        }

        // Compute overlap counts against every PE that shares a column.
        touched.clear();
        for &c in cols {
            for &pid in &col_pes[c as usize] {
                if overlap[pid as usize] == 0 {
                    touched.push(pid);
                }
                overlap[pid as usize] += 1;
            }
        }
        touched.sort_unstable(); // deterministic tie-breaking by pid

        // Score the overlapping PEs.
        let mut best_pid: u32 = 0;
        let mut best_score = f64::NEG_INFINITY;
        let consider = |pid: u32, ov: u32, w: usize, best_pid: &mut u32, best_score: &mut f64| {
            let score = if w + n_i > nnz_bar as usize {
                -((w + n_i) as f64 - nnz_bar) * penalty
            } else if w == 0 {
                1.0
            } else {
                (ov as f64 / n_i as f64).max(1.0 / w as f64)
            };
            if score > *best_score {
                *best_score = score;
                *best_pid = pid;
            }
        };
        for &pid in &touched {
            consider(
                pid,
                overlap[pid as usize],
                workload[pid as usize],
                &mut best_pid,
                &mut best_score,
            );
        }
        // The best zero-overlap candidate is the least-loaded PE overall
        // (every other zero-overlap PE scores no higher).
        if let Some(&(w, pid)) = by_load.iter().next() {
            if overlap[pid as usize] == 0 {
                consider(pid, 0, w, &mut best_pid, &mut best_score);
            } else {
                // Find the least-loaded PE with zero overlap; scan in load
                // order (cheap: overlapping PEs are few).
                if let Some(&(w, pid)) = by_load.iter().find(|&&(_, p)| overlap[p as usize] == 0) {
                    consider(pid, 0, w, &mut best_pid, &mut best_score);
                }
            }
        }

        // Commit the assignment.
        rows_of[best_pid as usize].push(i as u32);
        let old_w = workload[best_pid as usize];
        by_load.remove(&(old_w, best_pid));
        workload[best_pid as usize] = old_w + n_i;
        by_load.insert((old_w + n_i, best_pid));
        for &c in cols {
            let pes = &mut col_pes[c as usize];
            if let Err(pos) = pes.binary_search(&best_pid) {
                pes.insert(pos, best_pid);
            }
        }

        // Reset scratch.
        for &pid in &touched {
            overlap[pid as usize] = 0;
        }
    }

    RowAssignment::new(rows_of, matrix.rows())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::normalized_workload;
    use crate::naive::assign_rows_naive;
    use spacea_matrix::gen::{banded, uniform_random, BandedConfig, UniformConfig};

    #[test]
    fn produces_valid_partition() {
        let m = banded(&BandedConfig { n: 300, ..Default::default() });
        let a = assign_rows(&m, 16, 1e6);
        a.validate().expect("every row assigned exactly once");
    }

    #[test]
    fn single_pe_takes_everything() {
        let m = uniform_random(&UniformConfig { rows: 50, cols: 50, row_nnz: 3, seed: 1 });
        let a = assign_rows(&m, 1, 1e6);
        assert_eq!(a.rows_of(0).len(), 50);
    }

    #[test]
    fn balances_better_than_naive_on_skewed_input() {
        use spacea_matrix::gen::{rmat, RmatConfig};
        let m = rmat(&RmatConfig { n: 2048, edges: 16384, ..Default::default() });
        let prop = assign_rows(&m, 32, 1e6);
        let naive = assign_rows_naive(&m, 32, 42);
        let w_prop = normalized_workload(&prop, &m);
        let w_naive = normalized_workload(&naive, &m);
        assert!(w_prop > w_naive, "proposed ({w_prop}) must balance better than naive ({w_naive})");
    }

    #[test]
    fn groups_overlapping_rows_together() {
        // Two disjoint column clusters; rows of a cluster should co-locate.
        let mut coo = spacea_matrix::Coo::new(8, 40);
        for r in 0..4 {
            for c in 0..10 {
                coo.push(r, c, 1.0).unwrap();
            }
        }
        for r in 4..8 {
            for c in 30..40 {
                coo.push(r, c, 1.0).unwrap();
            }
        }
        let m = coo.to_csr();
        let a = assign_rows(&m, 2, 1e6);
        a.validate().unwrap();
        // Each PE's rows must come from a single cluster.
        for pid in 0..2 {
            let rows = a.rows_of(pid);
            assert!(!rows.is_empty());
            let first_cluster = rows[0] < 4;
            assert!(
                rows.iter().all(|&r| (r < 4) == first_cluster),
                "PE {pid} mixes clusters: {rows:?}"
            );
        }
    }

    #[test]
    fn budget_penalty_prevents_monster_pes() {
        // All rows share all columns: pure locality would pile everything on
        // PE 0, but the budget penalty must spread the load.
        let m = uniform_random(&UniformConfig { rows: 64, cols: 8, row_nnz: 8, seed: 3 });
        let a = assign_rows(&m, 8, 1e6);
        let w = a.workloads(|r| m.row_nnz(r));
        let max = *w.iter().max().unwrap();
        let budget = (m.nnz() as f64 / 8.0).ceil() as usize;
        assert!(max <= budget + 8, "max workload {max} far exceeds budget {budget}");
    }

    #[test]
    fn deterministic() {
        let m = banded(&BandedConfig { n: 200, ..Default::default() });
        assert_eq!(assign_rows(&m, 7, 1e6), assign_rows(&m, 7, 1e6));
    }

    #[test]
    fn handles_empty_rows() {
        let m = Csr::from_parts(3, 3, vec![0, 0, 1, 1], vec![0], vec![1.0]).unwrap();
        let a = assign_rows(&m, 2, 1e6);
        a.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "at least one PE")]
    fn zero_pes_panics() {
        let m = Csr::from_parts(1, 1, vec![0, 1], vec![0], vec![1.0]).unwrap();
        assign_rows(&m, 0, 1e6);
    }
}
