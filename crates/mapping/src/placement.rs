//! Phase II: logical PE placement (paper Section IV-C, Formula 1).
//!
//! Given the per-PE column sets from Phase I, logical PEs are clustered into
//! bank groups, bank groups into vaults, and (for multi-cube machines)
//! vaults into cubes. Each stage solves the same abstract problem: divide `p`
//! sets evenly into `q` groups of `k = p / q`, minimizing the maximum number
//! of unique elements per group — grouped sets with large overlaps keep
//! input-vector requests local to the shared L1/L2 CAM.
//!
//! The paper notes the problem is NP-hard and solves it with "a heuristic
//! algorithm similar to Algorithm 1"; [`cluster_sets`] is that greedy: items
//! are placed, largest first, into the non-full group with the highest
//! overlap ratio (falling back to the emptiest group when nothing overlaps).

use crate::{MachineShape, RowAssignment};
use spacea_matrix::Csr;
use std::collections::BTreeSet;

/// Phase II output: which logical PE occupies each physical PE slot.
///
/// Physical slots are linearized as
/// `((cube · V + vault) · L + layer_bg) · B + bank`, matching the
/// architecture crate's bank enumeration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    slot_to_logical: Vec<u32>,
}

impl Placement {
    /// Identity placement: logical PE `i` occupies slot `i` (the naive
    /// baseline).
    pub fn identity(num_pes: usize) -> Self {
        Placement { slot_to_logical: (0..num_pes as u32).collect() }
    }

    /// Builds a placement from an explicit slot→logical table.
    ///
    /// # Panics
    ///
    /// Panics if the table is not a permutation of `0..len`.
    pub fn from_table(slot_to_logical: Vec<u32>) -> Self {
        let mut seen = vec![false; slot_to_logical.len()];
        for &l in &slot_to_logical {
            assert!(
                (l as usize) < seen.len() && !seen[l as usize],
                "placement table must be a permutation"
            );
            seen[l as usize] = true;
        }
        Placement { slot_to_logical }
    }

    /// The logical PE occupying physical slot `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn logical_at_slot(&self, slot: usize) -> u32 {
        self.slot_to_logical[slot]
    }

    /// Number of slots (equals the number of logical PEs).
    pub fn len(&self) -> usize {
        self.slot_to_logical.len()
    }

    /// Returns `true` for a zero-PE placement (never produced in practice).
    pub fn is_empty(&self) -> bool {
        self.slot_to_logical.is_empty()
    }
}

/// The unique column-index set of each logical PE under an assignment.
pub fn pe_column_sets(matrix: &Csr, assignment: &RowAssignment) -> Vec<Vec<u32>> {
    (0..assignment.num_pes())
        .map(|pid| {
            let mut cols: Vec<u32> = assignment
                .rows_of(pid)
                .iter()
                .flat_map(|&r| matrix.row_cols(r as usize).iter().copied())
                .collect();
            cols.sort_unstable();
            cols.dedup();
            cols
        })
        .collect()
}

/// Greedily clusters `sets` into `q` groups of exactly `k = sets.len() / q`
/// members, maximizing intra-group overlap (Formula 1's heuristic).
///
/// Returns, per group, the indices of its member sets in placement order.
///
/// # Panics
///
/// Panics if `sets.len() != q * k` or `q == 0`.
pub fn cluster_sets(sets: &[Vec<u32>], q: usize, k: usize) -> Vec<Vec<u32>> {
    assert!(q > 0, "need at least one group");
    assert_eq!(sets.len(), q * k, "sets must divide evenly into groups");

    // Place the largest sets first: they dominate the max-unique objective.
    let mut order: Vec<u32> = (0..sets.len() as u32).collect();
    order.sort_by_key(|&i| std::cmp::Reverse((sets[i as usize].len(), std::cmp::Reverse(i))));

    let mut groups: Vec<Vec<u32>> = vec![Vec::new(); q];
    let mut unions: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); q];

    for &item in &order {
        let s = &sets[item as usize];
        let mut best_g = usize::MAX;
        let mut best_key = (f64::NEG_INFINITY, usize::MAX); // (score, -union pref via cmp)
        for g in 0..q {
            if groups[g].len() >= k {
                continue;
            }
            let overlap = s.iter().filter(|c| unions[g].contains(c)).count();
            // Any positive overlap beats every no-overlap candidate;
            // among no-overlap groups, prefer the emptiest union.
            let score = if overlap > 0 {
                overlap as f64 / s.len() as f64
            } else {
                1e-6 / (1.0 + unions[g].len() as f64)
            };
            // Higher score wins; ties prefer the smaller union (balances the
            // max-unique objective), then the lower group id (determinism).
            let key = (score, usize::MAX - unions[g].len());
            if key > best_key {
                best_key = key;
                best_g = g;
            }
        }
        debug_assert!(best_g != usize::MAX, "there is always a non-full group");
        groups[best_g].push(item);
        unions[best_g].extend(s.iter().copied());
    }
    groups
}

/// Runs the full Phase II hierarchy: PEs → bank groups → vaults → cubes, and
/// composes the result into a physical [`Placement`].
pub fn cluster_hierarchy(
    matrix: &Csr,
    assignment: &RowAssignment,
    shape: &MachineShape,
) -> Placement {
    let pe_sets = pe_column_sets(matrix, assignment);

    // Stage A: logical PEs → product bank groups.
    let bg_members = cluster_sets(&pe_sets, shape.product_bank_groups(), shape.banks_per_bg);
    let bg_sets: Vec<Vec<u32>> = bg_members.iter().map(|m| union_of(&pe_sets, m)).collect();

    // Stage B: bank groups → vaults.
    let vault_members = cluster_sets(&bg_sets, shape.vaults(), shape.product_bgs_per_vault);

    // Stage C: vaults → cubes (identity when there is a single cube).
    let vault_order: Vec<u32> = if shape.cubes > 1 {
        let vault_sets: Vec<Vec<u32>> =
            vault_members.iter().map(|m| union_of(&bg_sets, m)).collect();
        cluster_sets(&vault_sets, shape.cubes, shape.vaults_per_cube).concat()
    } else {
        (0..shape.vaults() as u32).collect()
    };

    // Compose: walk physical slots in linear order and record which logical
    // PE lands in each.
    let mut table = Vec::with_capacity(assignment.num_pes());
    for &v in &vault_order {
        for &bg in &vault_members[v as usize] {
            for &pe in &bg_members[bg as usize] {
                table.push(pe);
            }
        }
    }
    Placement::from_table(table)
}

fn union_of(sets: &[Vec<u32>], members: &[u32]) -> Vec<u32> {
    let mut u: Vec<u32> = members.iter().flat_map(|&m| sets[m as usize].iter().copied()).collect();
    u.sort_unstable();
    u.dedup();
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm1::assign_rows;
    use spacea_matrix::gen::{banded, BandedConfig};

    #[test]
    fn identity_placement() {
        let p = Placement::identity(4);
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
        assert_eq!(p.logical_at_slot(2), 2);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn from_table_rejects_duplicates() {
        Placement::from_table(vec![0, 0, 1]);
    }

    #[test]
    fn cluster_groups_overlapping_sets() {
        // Sets 0,1 share elements; sets 2,3 share elements; q=2, k=2.
        let sets = vec![vec![1, 2, 3], vec![2, 3, 4], vec![10, 11], vec![11, 12]];
        let groups = cluster_sets(&sets, 2, 2);
        for g in &groups {
            assert_eq!(g.len(), 2);
            let pair: Vec<u32> = g.to_vec();
            let both_low = pair.iter().all(|&i| i < 2);
            let both_high = pair.iter().all(|&i| i >= 2);
            assert!(both_low || both_high, "group mixes clusters: {pair:?}");
        }
    }

    #[test]
    fn cluster_respects_capacity() {
        let sets: Vec<Vec<u32>> = (0..12).map(|i| vec![i]).collect();
        let groups = cluster_sets(&sets, 4, 3);
        assert_eq!(groups.len(), 4);
        for g in &groups {
            assert_eq!(g.len(), 3);
        }
        let mut all: Vec<u32> = groups.concat();
        all.sort_unstable();
        assert_eq!(all, (0..12).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn cluster_requires_even_division() {
        cluster_sets(&[vec![0], vec![1], vec![2]], 2, 2);
    }

    #[test]
    fn hierarchy_produces_permutation() {
        let m = banded(&BandedConfig { n: 400, ..Default::default() });
        let shape = MachineShape::tiny();
        let a = assign_rows(&m, shape.product_pes(), 1e6);
        let p = cluster_hierarchy(&m, &a, &shape);
        assert_eq!(p.len(), shape.product_pes());
        // from_table already asserts the permutation property.
    }

    #[test]
    fn hierarchy_multi_cube() {
        let m = banded(&BandedConfig { n: 400, ..Default::default() });
        let shape = MachineShape {
            cubes: 2,
            vaults_per_cube: 2,
            product_bgs_per_vault: 2,
            banks_per_bg: 2,
        };
        let a = assign_rows(&m, shape.product_pes(), 1e6);
        let p = cluster_hierarchy(&m, &a, &shape);
        assert_eq!(p.len(), 16);
    }

    #[test]
    fn pe_column_sets_dedup() {
        let m = banded(&BandedConfig { n: 64, ..Default::default() });
        let a = assign_rows(&m, 4, 1e6);
        let sets = pe_column_sets(&m, &a);
        for s in &sets {
            let mut d = s.clone();
            d.dedup();
            assert_eq!(&d, s, "column sets must be sorted and unique");
        }
    }
}
