//! The SpaceA mapping method (paper Section IV).
//!
//! The mapping pipeline distributes the rows of a sparse matrix across the
//! Product-PEs of the machine in two phases (Figure 4):
//!
//! 1. **Row assignment to logical PEs** ([`algorithm1`], the paper's
//!    Algorithm 1): greedily assigns each row to the PE with the highest
//!    score, preferring PEs whose already-assigned rows share column indices
//!    with the row (intra-PE locality) while penalizing PEs that would exceed
//!    the balanced budget `nnz / #PEs`.
//! 2. **Logical PE placement** ([`placement`], the Formula 1 heuristic):
//!    clusters logical PEs into bank groups, bank groups into vaults (and
//!    vaults into cubes for multi-cube machines), minimizing the maximum
//!    number of unique column indexes per group so that the shared L1/L2 CAMs
//!    see correlated requests.
//!
//! The naive baseline of Section V-B ([`naive`]) assigns rows to PEs at
//! random and places PEs in id order.
//!
//! # Example
//!
//! ```
//! use spacea_mapping::{MappingStrategy, LocalityMapping, MachineShape};
//! use spacea_matrix::gen::{banded, BandedConfig};
//!
//! let a = banded(&BandedConfig { n: 256, ..Default::default() });
//! let shape = MachineShape { cubes: 1, vaults_per_cube: 4, product_bgs_per_vault: 2, banks_per_bg: 2 };
//! let mapping = LocalityMapping::default().map(&a, &shape);
//! assert_eq!(mapping.assignment.num_pes(), shape.product_pes());
//! // Every row of the matrix is assigned to exactly one PE.
//! let assigned: usize = (0..shape.product_pes()).map(|p| mapping.assignment.rows_of(p).len()).sum();
//! assert_eq!(assigned, 256);
//! ```

#![warn(missing_docs)]

pub mod algorithm1;
mod assignment;
pub mod chunked;
pub mod metrics;
pub mod naive;
pub mod placement;
mod shape;

pub use algorithm1::LocalityMapping;
pub use assignment::RowAssignment;
pub use chunked::ChunkedMapping;
pub use naive::NaiveMapping;
pub use placement::Placement;
pub use shape::MachineShape;

use spacea_matrix::Csr;

/// A complete mapping: which rows each logical PE processes, and where each
/// logical PE sits in the machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mapping {
    /// Phase I output: rows per logical PE.
    pub assignment: RowAssignment,
    /// Phase II output: logical PE → physical slot.
    pub placement: Placement,
}

/// A strategy that produces a complete [`Mapping`] for a matrix on a machine
/// shape. Implemented by [`LocalityMapping`] (the paper's method) and
/// [`NaiveMapping`] (the Section V-B baseline).
pub trait MappingStrategy {
    /// Maps `matrix` onto a machine of the given shape.
    fn map(&self, matrix: &Csr, shape: &MachineShape) -> Mapping;

    /// A short human-readable name used in experiment output.
    fn name(&self) -> &'static str;
}

/// Which of the paper's two mappings an experiment or harness job uses.
///
/// This is the evaluation-facing selector between [`NaiveMapping`] and
/// [`LocalityMapping`]; it lives here (rather than in the experiments crate)
/// so that job descriptions in `spacea-harness` can name a mapping without
/// depending on experiment code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MapKind {
    /// Random row assignment (Section V-B baseline).
    Naive,
    /// The proposed two-phase mapping.
    Proposed,
}

impl MapKind {
    /// Display label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            MapKind::Naive => "naive",
            MapKind::Proposed => "proposed",
        }
    }

    /// The strategy this kind selects.
    pub fn strategy(&self) -> &'static dyn MappingStrategy {
        const NAIVE: NaiveMapping = NaiveMapping::with_seed(naive::DEFAULT_SEED);
        const LOCALITY: LocalityMapping = LocalityMapping::paper_defaults();
        match self {
            MapKind::Naive => &NAIVE,
            MapKind::Proposed => &LOCALITY,
        }
    }
}
