/// Phase I output: the rows of the matrix each logical PE processes.
///
/// Invariant: every matrix row appears in exactly one PE's list (validated by
/// [`RowAssignment::validate`] and by property tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowAssignment {
    rows_of: Vec<Vec<u32>>,
    total_rows: usize,
}

impl RowAssignment {
    /// Builds an assignment from per-PE row lists.
    ///
    /// `total_rows` is the row count of the matrix being mapped, used by
    /// [`RowAssignment::validate`].
    pub fn new(rows_of: Vec<Vec<u32>>, total_rows: usize) -> Self {
        RowAssignment { rows_of, total_rows }
    }

    /// Number of logical PEs.
    pub fn num_pes(&self) -> usize {
        self.rows_of.len()
    }

    /// Rows assigned to logical PE `pid`, in assignment order.
    ///
    /// # Panics
    ///
    /// Panics if `pid >= self.num_pes()`.
    pub fn rows_of(&self, pid: usize) -> &[u32] {
        &self.rows_of[pid]
    }

    /// Row count of the matrix this assignment partitions.
    pub fn total_rows(&self) -> usize {
        self.total_rows
    }

    /// Checks the partition invariant: every row in `0..total_rows` assigned
    /// to exactly one PE. Returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = vec![false; self.total_rows];
        for (pid, rows) in self.rows_of.iter().enumerate() {
            for &r in rows {
                let r = r as usize;
                if r >= self.total_rows {
                    return Err(format!("PE {pid} holds out-of-range row {r}"));
                }
                if seen[r] {
                    return Err(format!("row {r} assigned to more than one PE"));
                }
                seen[r] = true;
            }
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(format!("row {missing} not assigned to any PE"));
        }
        Ok(())
    }

    /// Per-PE workload (non-zeros) given the matrix row lengths.
    pub fn workloads(&self, row_nnz: impl Fn(usize) -> usize) -> Vec<usize> {
        self.rows_of.iter().map(|rows| rows.iter().map(|&r| row_nnz(r as usize)).sum()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_accepts_partition() {
        let a = RowAssignment::new(vec![vec![0, 2], vec![1]], 3);
        assert!(a.validate().is_ok());
    }

    #[test]
    fn validate_rejects_duplicate() {
        let a = RowAssignment::new(vec![vec![0, 1], vec![1]], 2);
        assert!(a.validate().unwrap_err().contains("more than one"));
    }

    #[test]
    fn validate_rejects_missing() {
        let a = RowAssignment::new(vec![vec![0], vec![]], 2);
        assert!(a.validate().unwrap_err().contains("not assigned"));
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let a = RowAssignment::new(vec![vec![5]], 2);
        assert!(a.validate().unwrap_err().contains("out-of-range"));
    }

    #[test]
    fn workloads_sum_row_lengths() {
        let a = RowAssignment::new(vec![vec![0, 1], vec![2]], 3);
        let w = a.workloads(|r| r + 1); // rows have 1, 2, 3 nnz
        assert_eq!(w, vec![3, 3]);
    }
}
