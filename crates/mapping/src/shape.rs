/// The logical shape of a SpaceA machine, as seen by the mapping pipeline.
///
/// The mapping algorithm only needs to know how many Product-PEs exist and
/// how they nest into bank groups, vaults and cubes; all timing detail lives
/// in the architecture crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MachineShape {
    /// Number of memory cubes.
    pub cubes: usize,
    /// Vaults per cube (16 in the paper's HMC-like configuration).
    pub vaults_per_cube: usize,
    /// Matrix-holding bank groups per vault (one per DRAM layer above the
    /// vector die: 7 in the paper's 8-layer configuration).
    pub product_bgs_per_vault: usize,
    /// Banks (hence Product-PEs) per bank group (2 in the paper).
    pub banks_per_bg: usize,
}

impl MachineShape {
    /// Total Product-PEs (matrix banks) in the machine.
    pub fn product_pes(&self) -> usize {
        self.cubes * self.vaults_per_cube * self.product_bgs_per_vault * self.banks_per_bg
    }

    /// Total product bank groups in the machine.
    pub fn product_bank_groups(&self) -> usize {
        self.cubes * self.vaults_per_cube * self.product_bgs_per_vault
    }

    /// Total vaults in the machine.
    pub fn vaults(&self) -> usize {
        self.cubes * self.vaults_per_cube
    }

    /// The paper's default machine: 16 cubes × 16 vaults × 7 matrix layers ×
    /// 2 banks = 3584 Product-PEs.
    pub fn paper() -> Self {
        MachineShape { cubes: 16, vaults_per_cube: 16, product_bgs_per_vault: 7, banks_per_bg: 2 }
    }

    /// A laptop-scale machine preserving the paper's per-cube structure:
    /// 2 cubes × 16 vaults × 7 layers × 2 banks = 448 Product-PEs.
    pub fn scaled() -> Self {
        MachineShape { cubes: 2, vaults_per_cube: 16, product_bgs_per_vault: 7, banks_per_bg: 2 }
    }

    /// A miniature shape for unit tests.
    pub fn tiny() -> Self {
        MachineShape { cubes: 1, vaults_per_cube: 4, product_bgs_per_vault: 2, banks_per_bg: 2 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shape_pe_count() {
        assert_eq!(MachineShape::paper().product_pes(), 3584);
        assert_eq!(MachineShape::paper().vaults(), 256);
        assert_eq!(MachineShape::paper().product_bank_groups(), 1792);
    }

    #[test]
    fn tiny_shape_counts() {
        let s = MachineShape::tiny();
        assert_eq!(s.product_pes(), 16);
        assert_eq!(s.product_bank_groups(), 8);
        assert_eq!(s.vaults(), 4);
    }
}
