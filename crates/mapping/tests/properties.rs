//! Property tests for the mapping pipeline: every strategy must produce a
//! valid partition and placement on arbitrary matrices, and the clustering
//! heuristic must respect its structural constraints.

use proptest::prelude::*;
use spacea_mapping::placement::{cluster_sets, pe_column_sets};
use spacea_mapping::{
    ChunkedMapping, LocalityMapping, MachineShape, MappingStrategy, NaiveMapping,
};
use spacea_matrix::{Coo, Csr};

fn sparse_square() -> impl Strategy<Value = Csr> {
    (2usize..48).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n, 0.1f64..5.0), 0..200).prop_map(move |entries| {
            let mut coo = Coo::new(n, n);
            for (r, c, v) in entries {
                coo.push(r, c, v).expect("in range");
            }
            coo.to_csr()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn every_strategy_partitions_and_places(a in sparse_square()) {
        let shape = MachineShape::tiny();
        let strategies: [&dyn MappingStrategy; 3] =
            [&NaiveMapping::default(), &LocalityMapping::default(), &ChunkedMapping];
        for strategy in strategies {
            let m = strategy.map(&a, &shape);
            prop_assert!(m.assignment.validate().is_ok(), "{} partition", strategy.name());
            prop_assert_eq!(m.placement.len(), shape.product_pes());
            // Placement is a permutation (checked by construction, but
            // verify the round trip anyway).
            let mut seen = vec![false; shape.product_pes()];
            for slot in 0..shape.product_pes() {
                let l = m.placement.logical_at_slot(slot) as usize;
                prop_assert!(!seen[l]);
                seen[l] = true;
            }
        }
    }

    #[test]
    fn workload_sums_are_invariant(a in sparse_square()) {
        // Total assigned work equals nnz for every strategy.
        let shape = MachineShape::tiny();
        for strategy in [&NaiveMapping::default() as &dyn MappingStrategy, &LocalityMapping::default(), &ChunkedMapping] {
            let m = strategy.map(&a, &shape);
            let total: usize = m.assignment.workloads(|r| a.row_nnz(r)).iter().sum();
            prop_assert_eq!(total, a.nnz(), "{}", strategy.name());
        }
    }

    #[test]
    fn cluster_sets_respects_structure(
        seed_sets in proptest::collection::vec(
            proptest::collection::vec(0u32..64, 0..12), 1..5
        ),
        q in 1usize..4,
    ) {
        // Build exactly q*k sets for some k.
        let k = seed_sets.len();
        let mut sets: Vec<Vec<u32>> = Vec::new();
        for i in 0..(q * k) {
            let mut s = seed_sets[i % k].clone();
            s.sort_unstable();
            s.dedup();
            sets.push(s);
        }
        let groups = cluster_sets(&sets, q, k);
        prop_assert_eq!(groups.len(), q);
        let mut all: Vec<u32> = Vec::new();
        for g in &groups {
            prop_assert_eq!(g.len(), k, "groups must be exactly k wide");
            all.extend(g.iter().copied());
        }
        all.sort_unstable();
        let expected: Vec<u32> = (0..(q * k) as u32).collect();
        prop_assert_eq!(all, expected, "every set placed exactly once");
    }

    #[test]
    fn pe_column_sets_cover_matrix_columns(a in sparse_square()) {
        let shape = MachineShape::tiny();
        let m = LocalityMapping::default().map(&a, &shape);
        let sets = pe_column_sets(&a, &m.assignment);
        let mut union: Vec<u32> = sets.into_iter().flatten().collect();
        union.sort_unstable();
        union.dedup();
        let mut expected: Vec<u32> = a.col_idx().to_vec();
        expected.sort_unstable();
        expected.dedup();
        prop_assert_eq!(union, expected);
    }
}
