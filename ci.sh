#!/bin/sh
# Local mirror of .github/workflows/ci.yml — run before pushing.
set -eu

cargo build --release
cargo test -q
cargo fmt --check
cargo clippy -- -D warnings

# Static analysis: the workspace must be clean modulo the committed baseline,
# and the baseline itself may only shrink (the ratchet). The second check is
# skipped on the first commit that introduces the baseline.
cargo run --release -p spacea-lint -- --check --baseline lint-baseline.json
if git cat-file -e HEAD~1:lint-baseline.json 2>/dev/null; then
  git show HEAD~1:lint-baseline.json > target/lint-baseline-prev.json
  cargo run --release -p spacea-lint -- \
    --compare-baselines target/lint-baseline-prev.json lint-baseline.json
fi

# PDES call-graph artifacts: both exports must be well-formed, and the
# event-loop path must stay traceable (a --why chain ending at its root).
cargo run --release -p spacea-lint -- --graph dot > target/lint-graph.dot
grep -q '^digraph spacea_calls' target/lint-graph.dot
grep -q '}' target/lint-graph.dot
cargo run --release -p spacea-lint -- --graph json > target/lint-graph.json
grep -q '"schema": "spacea-lint-graph-v1"' target/lint-graph.json
cargo run --release -p spacea-lint -- --why Machine::run | grep -q "PDES root"
cargo run --release -p spacea-lint -- --why LoadQueue::push_forced_at \
  | grep -q "reachable: Machine::run -> Sim::run -> Sim::pe_step -> LoadQueue::push_forced_at"

# Ratchet regression guard: --compare-baselines must exit non-zero when the
# baseline grows (a zero exit here would mean the ratchet is toothless).
printf '%s\n' \
  '{' \
  '  "schema": "spacea-lint-baseline-v1",' \
  '  "total": 1,' \
  '  "entries": [' \
  '    {"rule": "D1", "file": "crates/sim/src/engine.rs", "count": 1}' \
  '  ]' \
  '}' > target/lint-baseline-grown.json
if cargo run --release -p spacea-lint -- \
    --compare-baselines lint-baseline.json target/lint-baseline-grown.json; then
  echo "ci.sh: --compare-baselines accepted a grown baseline" >&2
  exit 1
fi
cargo run --release -p spacea-bench --bin all_experiments -- --quick --jobs 4 > /dev/null

# Sweep smoke test: a tiny 2-axis grid run whole and as 2 shards sharing a
# cache must merge byte-identically, and GC must respect its byte budget.
SWEEP_CACHE=target/spacea-cache-ci
SWEEP_ARGS="--quick --ids 1,2 --scales 256,512 --csv --jobs 2 --cache-dir $SWEEP_CACHE"
rm -rf "$SWEEP_CACHE"
cargo run --release -p spacea-bench --bin sweep -- $SWEEP_ARGS > target/sweep-full.csv
rm -rf "$SWEEP_CACHE"
cargo run --release -p spacea-bench --bin sweep -- $SWEEP_ARGS --shard 0/2 > target/sweep-s0.csv
cargo run --release -p spacea-bench --bin sweep -- $SWEEP_ARGS --shard 1/2 > target/sweep-s1.csv
head -n 1 target/sweep-s0.csv > target/sweep-merged.csv
tail -n +2 -q target/sweep-s0.csv target/sweep-s1.csv >> target/sweep-merged.csv
cmp target/sweep-merged.csv target/sweep-full.csv
cargo run --release -p spacea-bench --bin sweep -- --cache-dir "$SWEEP_CACHE" --gc --gc-max-kb 2
cargo run --release -p spacea-bench --bin sweep -- $SWEEP_ARGS > target/sweep-regc.csv
cmp target/sweep-regc.csv target/sweep-full.csv

# Scenario-matrix smoke test: a tiny backend x format x partitioning grid
# (every cell is bitwise-verified against the CSR reference inside the
# harness) run whole and as 2 shards sharing a cache must merge
# byte-identically, with no failed cells.
SCN_CACHE=target/spacea-cache-scenario
SCN_ARGS="--quick --ids 1 --scales 256 --backend spacea,gpu,hbm --format csr,sell --partition row,nnz --csv --jobs 2 --cache-dir $SCN_CACHE"
rm -rf "$SCN_CACHE"
cargo run --release -p spacea-bench --bin sweep -- $SCN_ARGS > target/scn-full.csv
rm -rf "$SCN_CACHE"
cargo run --release -p spacea-bench --bin sweep -- $SCN_ARGS --shard 0/2 > target/scn-s0.csv
cargo run --release -p spacea-bench --bin sweep -- $SCN_ARGS --shard 1/2 > target/scn-s1.csv
head -n 1 target/scn-s0.csv > target/scn-merged.csv
tail -n +2 -q target/scn-s0.csv target/scn-s1.csv >> target/scn-merged.csv
cmp target/scn-merged.csv target/scn-full.csv
test "$(wc -l < target/scn-full.csv)" -eq 14  # header + 1 sim point + 12 cells
! grep -qE "failed|timed-out" target/scn-full.csv

# Fault-injection smoke test: a sweep with a deliberately stalled vault and a
# panicking job must still exit 0, render every row, and record the failures
# (with the watchdog's diagnosis naming the vault) in the manifest.
FAULT_CACHE=target/spacea-cache-faults
rm -rf "$FAULT_CACHE"
cargo run --release -p spacea-bench --bin sweep -- --quick --ids 1,2,3 --csv --jobs 2 \
  --cache-dir "$FAULT_CACHE" --faults "0:stall-vault=0@100;1:panic" > target/sweep-faults.csv
grep -q "timed-out" target/sweep-faults.csv
grep -q "failed" target/sweep-faults.csv
grep -q '"status":"timed-out"' "$FAULT_CACHE/last-run.json"
grep -q "vault 0" "$FAULT_CACHE/last-run.json"

# Timeline smoke test: a sweep with one stalled and one healthy job must
# export a Perfetto-loadable timeline for the healthy job, and the stalled
# vault's diagnosis must carry its occupancy time series.
TL_CACHE=target/spacea-cache-timeline
rm -rf "$TL_CACHE"
cargo run --release -p spacea-bench --bin sweep -- --quick --ids 1,2 --csv --jobs 2 \
  --cache-dir "$TL_CACHE" --timeline --faults "1:stall-vault=0@100" > target/sweep-timeline.csv
grep -q "timed-out" target/sweep-timeline.csv
for f in "$TL_CACHE"/timelines/*.json; do
  cargo run --release -p spacea-bench --bin timeline -- --validate "$f"
done
grep -q "occupancy history" "$TL_CACHE/last-run.json"
grep -q "vault 0" "$TL_CACHE/last-run.json"

# Service smoke test: a daemon over a fresh cache dir serves 8 concurrent
# mixed-matrix requests whose responses must bitwise-match the offline
# reference SpMV; after a restart over the same cache dir its manifest must
# show zero Phase I/II mapping computations (the warm-mapping guarantee).
SERVE_CACHE=target/spacea-cache-serve
rm -rf "$SERVE_CACHE"
cargo run --release -p spacea-bench --bin serve -- start --quick --cache-dir "$SERVE_CACHE" &
SERVE_PID=$!
for _ in $(seq 1 150); do [ -f "$SERVE_CACHE/serve.port" ] && break; sleep 0.1; done
cargo run --release -p spacea-bench --bin serve -- submit --cache-dir "$SERVE_CACHE" \
  --matrix 1/256,2/256 --seeds 0,1,2,3,4,5,6,7 --check
cargo run --release -p spacea-bench --bin serve -- stat --cache-dir "$SERVE_CACHE" \
  | grep -q '"requests":8'
cargo run --release -p spacea-bench --bin serve -- shutdown --cache-dir "$SERVE_CACHE"
wait $SERVE_PID
grep -q '"computed":2' "$SERVE_CACHE/serve-manifest.json"
cargo run --release -p spacea-bench --bin serve -- start --quick --cache-dir "$SERVE_CACHE" &
SERVE_PID=$!
for _ in $(seq 1 150); do [ -f "$SERVE_CACHE/serve.port" ] && break; sleep 0.1; done
cargo run --release -p spacea-bench --bin serve -- submit --cache-dir "$SERVE_CACHE" \
  --matrix 1/256,2/256 --seeds 8,9,10,11 --check
# Journal compaction: 12 acked requests are on disk across both lives;
# compacting to the newest file keeps proof bounded (crash-safe watermark).
cargo run --release -p spacea-bench --bin serve -- stat --cache-dir "$SERVE_CACHE" \
  | grep -q '"journal_records":12'
cargo run --release -p spacea-bench --bin serve -- compact --retain 1 --cache-dir "$SERVE_CACHE"
cargo run --release -p spacea-bench --bin serve -- stat --cache-dir "$SERVE_CACHE" \
  | grep -q '"journal_files":1'
cargo run --release -p spacea-bench --bin serve -- shutdown --cache-dir "$SERVE_CACHE"
wait $SERVE_PID
grep -q '"computed":0' "$SERVE_CACHE/serve-manifest.json"

# Chaos soak: 8 seeded service-layer fault plans against live daemons. The
# invariant is absolute — every acknowledged response bitwise-matches the
# offline SpMV and is journaled, every rejection carries an explicit wire
# code, and a restart over the (possibly corrupted) cache heals and replays
# every journaled request correctly. A failing seed replays with --seed K.
cargo run --release -p spacea-bench --bin serve_chaos -- --seeds 8

# Service throughput ratchet: the deterministic cycles-per-batch snapshot
# must match HEAD exactly (refresh with `serve_bench --write` when the
# simulator legitimately changes).
cargo run --release -p spacea-bench --bin serve_bench -- --check BENCH_serve.json

# Event-engine ratchet: deterministic workload checksums must match the
# committed snapshot, and the calendar queue must stay >=1.5x the reference
# BinaryHeap engine on events/sec (refresh with `engine_bench --write`).
cargo run --release -p spacea-bench --bin engine_bench -- --check BENCH_engine.json

echo "ci.sh: all checks passed"
