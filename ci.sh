#!/bin/sh
# Local mirror of .github/workflows/ci.yml — run before pushing.
set -eu

cargo build --release
cargo test -q
cargo fmt --check
cargo clippy -- -D warnings
cargo run --release -p spacea-bench --bin all_experiments -- --quick --jobs 4 > /dev/null
echo "ci.sh: all checks passed"
