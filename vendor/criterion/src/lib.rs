//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this workspace vendors the
//! subset of the criterion 0.5 API its benches use: `criterion_group!` /
//! `criterion_main!`, benchmark groups with `sample_size` /
//! `measurement_time` / `warm_up_time` / `throughput`, and benchers with
//! `iter` / `iter_batched`.
//!
//! Timing is honest but simple: each sample times a batch of iterations with
//! `std::time::Instant`, and the report prints the median, minimum and
//! throughput. There are no plots, baselines, or statistical regression
//! tests.

#![warn(missing_docs)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` sizes its batches. All variants behave identically
/// here: one setup per timed routine call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per sample.
    PerIteration,
}

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per routine call.
    Elements(u64),
    /// Bytes processed per routine call.
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Applies command-line arguments (`--bench` is ignored; a bare string
    /// filters benchmark names, as with real criterion).
    pub fn configure_from_args(mut self) -> Self {
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            if !arg.starts_with('-') {
                filter = Some(arg);
            }
        }
        self.filter = filter;
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        let mut g = self.benchmark_group("");
        g.bench_function(name, f);
        g.finish();
    }
}

/// A group of related benchmarks sharing measurement settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Units of work per routine call, for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measures one benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full =
            if self.name.is_empty() { name.to_string() } else { format!("{}/{name}", self.name) };
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }

        // Warm-up: run until the warm-up budget is spent.
        let warm_deadline = Instant::now() + self.warm_up_time;
        let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
        while Instant::now() < warm_deadline {
            f(&mut b);
        }

        // Timed samples.
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            b.elapsed = Duration::ZERO;
            b.iters = 0;
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
            }
            if Instant::now() > deadline {
                break;
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        if samples.is_empty() {
            println!("{full:<40} no samples");
            return self;
        }
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let thr = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12.0} elem/s", n as f64 / median)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12.0} B/s", n as f64 / median)
            }
            None => String::new(),
        };
        println!("{full:<40} median {:>12} min {:>12}{thr}", format_time(median), format_time(min));
        self
    }

    /// Ends the group (prints nothing; provided for API parity).
    pub fn finish(&mut self) {}
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Times the body of one benchmark sample.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        const ITERS: u64 = 8;
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += ITERS;
    }

    /// Times `routine` over fresh inputs built by `setup` (setup time is not
    /// counted).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        const ITERS: u64 = 8;
        for _ in 0..ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
        self.iters += ITERS;
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1))
            .throughput(Throughput::Elements(4));
        let mut ran = 0u32;
        g.bench_function("inc", |b| b.iter(|| ran += 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn time_formatting() {
        assert!(format_time(2.5e-9).contains("ns"));
        assert!(format_time(2.5e-5).contains("us"));
        assert!(format_time(2.5e-2).contains("ms"));
        assert!(format_time(2.5).contains("s"));
    }
}
