//! Value-generation strategies: the sampled (non-shrinking) core of the API.

use crate::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// from it (dependent generation).
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        let v = self.inner.generate(rng);
        (self.f)(v).generate(rng)
    }
}

macro_rules! uint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
uint_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
    )*};
}
int_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5)
);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-balanced values across a wide magnitude range.
        let mag = rng.unit_f64() * 2e6 - 1e6;
        mag * rng.unit_f64()
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing any value of `T` (the used subset of
/// `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: PhantomData }
}

/// A strategy that always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}
