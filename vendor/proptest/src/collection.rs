//! Collection strategies (the used subset: `vec`).

use crate::strategy::Strategy;
use crate::TestRng;
use std::ops::{Range, RangeInclusive};

/// Length specifications accepted by [`vec`]: `Range<usize>` and
/// `RangeInclusive<usize>`.
pub trait SizeRange {
    /// The half-open `[start, end)` bounds of the range.
    fn bounds(&self) -> (usize, usize);
}

impl SizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        (self.start, self.end)
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end() + 1)
    }
}

impl SizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self + 1)
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `len`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        assert!(self.len.start < self.len.end, "cannot sample empty length range");
        let span = (self.len.end - self.len.start) as u64;
        let n = self.len.start + rng.below(span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors whose elements come from `element` and whose length is
/// uniform in `len`.
pub fn vec<S: Strategy>(element: S, len: impl SizeRange) -> VecStrategy<S> {
    let (start, end) = len.bounds();
    VecStrategy { element, len: start..end }
}
