//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace vendors the
//! subset of the proptest API its property tests use: the [`proptest!`] macro,
//! `prop_assert*` macros, [`ProptestConfig`], [`any`], range/tuple/vec
//! strategies, and the [`Strategy`] combinators `prop_map` / `prop_flat_map`.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case panics with the values baked into the
//!   assertion message; the run is deterministic (seeded from the test name
//!   and case index), so failures reproduce exactly.
//! * **Determinism.** There is no `PROPTEST_CASES`/env handling; `cases`
//!   comes only from `ProptestConfig`.

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;

pub use strategy::{any, Any, Strategy};

/// Configuration for a [`proptest!`] block (the used subset).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted and ignored (upstream: shrink iteration budget).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0 }
    }
}

/// A deterministic generator driving strategy sampling.
///
/// SplitMix64 over a seed derived from the test name and case index: every
/// case of every test draws from an independent, reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the stream for `(test name, case index)`.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform integer in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// A uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Any, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig};
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)` body
/// runs `cases` times with fresh deterministically-sampled arguments.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:pat in $strat:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(concat!(module_path!(), "::", stringify!($name)), case);
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )+
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:pat in $strat:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name ( $( $arg in $strat ),+ ) $body
            )*
        }
    };
}

/// Asserts a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_sample_in_bounds(n in 2usize..48, f in 0.1f64..5.0) {
            prop_assert!((2..48).contains(&n));
            prop_assert!((0.1..5.0).contains(&f));
        }

        #[test]
        fn vec_respects_length_range(
            v in crate::collection::vec((0u32..10, any::<bool>()), 3..7),
        ) {
            prop_assert!((3..7).contains(&v.len()));
            for (x, _) in v {
                prop_assert!(x < 10);
            }
        }

        #[test]
        fn flat_map_sees_outer_value(
            pair in (1usize..20).prop_flat_map(|n| {
                crate::collection::vec(0..n, 1..4).prop_map(move |v| (n, v))
            }),
        ) {
            let (n, v) = pair;
            prop_assert!(v.iter().all(|&x| x < n));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
