//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors the
//! small, fully deterministic subset of the `rand 0.8` API it actually uses:
//! [`SmallRng`] (xoshiro256++ seeded via SplitMix64, the same generator the
//! real `SmallRng` uses on 64-bit targets), the [`Rng`] sampling methods
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`], and
//! [`seq::SliceRandom::shuffle`].
//!
//! Streams are stable across runs and platforms — everything downstream
//! (matrix generators, naive mapping, graph workloads) depends on that for
//! reproducible experiments — but they are not guaranteed to match the
//! upstream crate's streams value-for-value.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of randomness (the subset of `rand_core::RngCore`
/// needed by [`Rng`]).
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic seeding (the subset of `rand_core::SeedableRng` used here).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value from the type's standard distribution
    /// (`[0, 1)` for floats, uniform for integers and `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (`low..high` or `low..=high`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift bounded sampling (Lemire, without the rejection step; the
/// bias is ≤ span/2⁶⁴, far below anything the statistical tests resolve).
pub(crate) fn bounded(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! sample_uint_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + bounded(rng, span + 1) as $t
            }
        }
    )*};
}
sample_uint_range!(u8, u16, u32, u64, usize);

macro_rules! sample_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(bounded(rng, span) as i64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(bounded(rng, span + 1) as i64) as $t
            }
        }
    )*};
}
sample_int_range!(i8, i16, i32, i64, isize);

macro_rules! sample_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = f64::sample(rng) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = f64::sample(rng) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}
sample_float_range!(f32, f64);

/// SplitMix64: expands a 64-bit seed into well-mixed state words.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A small, fast, deterministic generator: xoshiro256++.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; SplitMix64 cannot produce
        // four zero outputs in a row, but belt and braces:
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::SmallRng;
}

/// Sequence utilities, mirroring `rand::seq`.
pub mod seq {
    use crate::RngCore;

    /// Slice shuffling (the subset of `rand::seq::SliceRandom` used here).
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = crate::bounded(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::SliceRandom;

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.5f64..5.0);
            assert!((0.5..5.0).contains(&f));
            let i = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&i));
        }
    }

    #[test]
    fn unit_float_distribution_covers_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        let vals: Vec<f64> = (0..4096).map(|_| rng.gen::<f64>()).collect();
        assert!(vals.iter().all(|v| (0.0..1.0).contains(v)));
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "a 100-element shuffle virtually never fixes order");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.03);
    }
}
