//! Smoke test: every experiment module runs end-to-end on the quick
//! configuration and produces structurally sound output.

use spacea::core::experiments::{self, ExpConfig, SuiteCache};

#[test]
fn all_experiments_produce_output() {
    let mut cache = SuiteCache::new(ExpConfig::quick());

    let outputs = vec![
        experiments::table1::run(&mut cache),
        experiments::fig2::run(&mut cache),
        experiments::fig5::run(&mut cache),
        experiments::table2::run(),
        experiments::fig6::run(&mut cache),
        experiments::fig7::run_with(&mut cache, &experiments::fig7::Fig7Sweep::quick()),
        experiments::fig8::run(&mut cache),
        experiments::fig9::run(&mut cache),
        experiments::fig10::run(&mut cache),
        experiments::table3::run(&mut cache),
    ];

    let expected_ids =
        ["table1", "fig2", "fig5", "table2", "fig6", "fig7", "fig8", "fig9", "fig10", "table3"];
    assert_eq!(outputs.len(), expected_ids.len());
    for (out, id) in outputs.iter().zip(expected_ids) {
        assert_eq!(out.id, id);
        assert!(!out.table.rows.is_empty(), "{id} main table has rows");
        assert!(!out.headline.is_empty() || id == "table1", "{id} reports headline numbers");
        // Rendering must not panic and must contain the title.
        let text = out.table.to_text();
        assert!(text.starts_with("## "), "{id} renders a titled table");
        let csv = out.table.to_csv();
        assert_eq!(
            csv.lines().count(),
            out.table.rows.len() + 1,
            "{id} CSV has header + one line per row"
        );
    }

    // Measured headline values must be finite; positive wherever positivity
    // is structural (fig8's savings are differences and may go negative at
    // the miniature quick() scale).
    for out in &outputs {
        for (name, paper, measured) in &out.headline {
            assert!(measured.is_finite(), "{}: {name} measured non-finite", out.id);
            if *paper > 0.0 && out.id != "fig8" {
                assert!(*measured > 0.0, "{}: {name} measured non-positive", out.id);
            }
        }
    }
}

#[test]
fn render_all_concatenates_everything() {
    let mut cache = SuiteCache::new(ExpConfig::quick());
    let outputs = vec![experiments::table2::run(), experiments::table1::run(&mut cache)];
    let text = experiments::render_all(&outputs);
    assert!(text.contains("Table II"));
    assert!(text.contains("Table I"));
}
