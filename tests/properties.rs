//! Property-based tests over the core invariants: simulator correctness on
//! arbitrary matrices, mapping partition properties, format round trips, and
//! determinism.

use proptest::prelude::*;
use spacea::arch::{HwConfig, Machine, RunSpec};
use spacea::mapping::{LocalityMapping, MappingStrategy, NaiveMapping};
use spacea::matrix::{Coo, Csr};

/// Strategy: a small random sparse matrix as (rows, cols, entries).
fn sparse_matrix() -> impl Strategy<Value = Csr> {
    (2usize..40, 2usize..40).prop_flat_map(|(rows, cols)| {
        let entry = (0..rows, 0..cols, -4.0f64..4.0);
        proptest::collection::vec(entry, 0..160).prop_map(move |entries| {
            let mut coo = Coo::new(rows, cols);
            for (r, c, v) in entries {
                coo.push(r, c, v).expect("coordinates drawn in range");
            }
            coo.to_csr()
        })
    })
}

/// Strategy: a small random *square* matrix plus a matching input vector.
fn square_system() -> impl Strategy<Value = (Csr, Vec<f64>)> {
    (2usize..32).prop_flat_map(|n| {
        let entry = (0..n, 0..n, -4.0f64..4.0);
        let mat = proptest::collection::vec(entry, 1..128).prop_map(move |entries| {
            let mut coo = Coo::new(n, n);
            for (r, c, v) in entries {
                coo.push(r, c, v).expect("in range");
            }
            coo.to_csr()
        });
        let x = proptest::collection::vec(-3.0f64..3.0, n..=n);
        (mat, x)
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn simulator_matches_oracle_on_arbitrary_matrices((a, x) in square_system()) {
        let hw = HwConfig::tiny();
        let mapping = LocalityMapping::default().map(&a, &hw.shape);
        let r =
            Machine::new(hw).run(RunSpec::spmv(&a, &x, &mapping)).expect("must validate").into_report();
        prop_assert!(r.validated);
        let oracle = a.spmv(&x);
        for (s, o) in r.output.iter().zip(&oracle) {
            prop_assert!((s - o).abs() <= 1e-9 * o.abs().max(1.0));
        }
    }

    #[test]
    fn simulation_is_deterministic((a, x) in square_system()) {
        let hw = HwConfig::tiny();
        let mapping = NaiveMapping::default().map(&a, &hw.shape);
        let r1 = Machine::new(hw.clone())
            .run(RunSpec::spmv(&a, &x, &mapping))
            .expect("run 1")
            .into_report();
        let r2 =
            Machine::new(hw).run(RunSpec::spmv(&a, &x, &mapping)).expect("run 2").into_report();
        prop_assert_eq!(r1.cycles, r2.cycles);
        prop_assert_eq!(r1.tsv_bytes, r2.tsv_bytes);
        prop_assert_eq!(r1.noc_byte_hops, r2.noc_byte_hops);
        prop_assert_eq!(r1.activity.fpu_ops, r2.activity.fpu_ops);
    }

    #[test]
    fn spmv_is_linear(a in sparse_matrix()) {
        // A(x + y) == Ax + Ay up to floating-point tolerance.
        let x: Vec<f64> = (0..a.cols()).map(|i| (i % 7) as f64 - 3.0).collect();
        let y: Vec<f64> = (0..a.cols()).map(|i| (i % 5) as f64 * 0.5).collect();
        let xy: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        let lhs = a.spmv(&xy);
        let ax = a.spmv(&x);
        let ay = a.spmv(&y);
        for i in 0..a.rows() {
            prop_assert!((lhs[i] - (ax[i] + ay[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn csr_coo_roundtrip(a in sparse_matrix()) {
        prop_assert_eq!(Csr::from_coo(&a.to_coo()), a);
    }

    #[test]
    fn transpose_is_involution(a in sparse_matrix()) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matrix_market_roundtrip(a in sparse_matrix()) {
        let text = spacea::matrix::mmio::write_string(&a);
        let back = spacea::matrix::mmio::read_str(&text).expect("own output parses");
        prop_assert_eq!(back.rows(), a.rows());
        prop_assert_eq!(back.cols(), a.cols());
        prop_assert_eq!(back.nnz(), a.nnz());
        // Values survive the decimal round trip.
        let x: Vec<f64> = (0..a.cols()).map(|i| 1.0 + i as f64).collect();
        let (ya, yb) = (a.spmv(&x), back.spmv(&x));
        for (p, q) in ya.iter().zip(&yb) {
            prop_assert!((p - q).abs() < 1e-9);
        }
    }

    #[test]
    fn both_mappings_partition_rows(a in sparse_matrix()) {
        let shape = spacea::mapping::MachineShape::tiny();
        for mapping in [
            NaiveMapping::default().map(&a, &shape),
            LocalityMapping::default().map(&a, &shape),
        ] {
            prop_assert!(mapping.assignment.validate().is_ok());
            prop_assert_eq!(mapping.placement.len(), shape.product_pes());
        }
    }

    #[test]
    fn normalized_workload_bounded(a in sparse_matrix()) {
        let shape = spacea::mapping::MachineShape::tiny();
        let mapping = LocalityMapping::default().map(&a, &shape);
        let w = spacea::mapping::metrics::normalized_workload(&mapping.assignment, &a);
        prop_assert!(w > 0.0 && w <= 1.0 + 1e-12);
    }

    #[test]
    fn semiring_spmv_plus_times_equals_spmv(a in sparse_matrix()) {
        let x: Vec<f64> = (0..a.cols()).map(|i| (i % 9) as f64 * 0.25).collect();
        let lhs = spacea::graph::semiring_spmv::<spacea::graph::PlusTimes>(&a, &x);
        let rhs = a.spmv(&x);
        for (p, q) in lhs.iter().zip(&rhs) {
            prop_assert!((p - q).abs() < 1e-12);
        }
    }
}
