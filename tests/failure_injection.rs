//! Failure-injection tests: corrupted inputs and hostile configurations must
//! produce typed errors, never wrong answers or panics across the public API.

use spacea::arch::{HwConfig, Machine, RunSpec, SimError};
use spacea::core::{Accelerator, MappingChoice};
use spacea::mapping::{
    LocalityMapping, MachineShape, Mapping, MappingStrategy, Placement, RowAssignment,
};
use spacea::matrix::gen::{banded, BandedConfig};
use spacea::matrix::{mmio, Csr, MatrixError};

fn small() -> Csr {
    banded(&BandedConfig { n: 96, ..Default::default() })
}

#[test]
fn mapping_that_drops_a_row_is_rejected() {
    let a = small();
    let cfg = HwConfig::tiny();
    // Hand-craft an assignment that silently drops row 0: PE work totals
    // would no longer cover the matrix; the machine must refuse before
    // producing a wrong (incomplete) output vector.
    let mut rows_of: Vec<Vec<u32>> = vec![Vec::new(); cfg.shape.product_pes()];
    for r in 1..a.rows() as u32 {
        rows_of[(r as usize) % cfg.shape.product_pes()].push(r);
    }
    let bad = Mapping {
        assignment: RowAssignment::new(rows_of, a.rows()),
        placement: Placement::identity(cfg.shape.product_pes()),
    };
    assert!(bad.assignment.validate().is_err(), "the assignment itself is detectably bad");

    // The machine checks PE count and row count; a dropped row with correct
    // totals is caught by the oracle validation instead — either way the
    // run cannot return success with a wrong vector. Here row counts match,
    // so it must fail oracle validation.
    let x = vec![1.0; a.cols()];
    match Machine::new(cfg).run(RunSpec::spmv(&a, &x, &bad)) {
        Err(SimError::ValidationFailed { .. }) => {}
        Err(other) => panic!("expected validation failure, got {other}"),
        Ok(r) => {
            panic!("machine accepted a row-dropping mapping (validated={})", r.report.validated)
        }
    }
}

#[test]
fn wrong_machine_size_is_rejected() {
    let a = small();
    let other =
        MachineShape { cubes: 1, vaults_per_cube: 2, product_bgs_per_vault: 1, banks_per_bg: 2 };
    let mapping = LocalityMapping::default().map(&a, &other);
    let err =
        Machine::new(HwConfig::tiny()).run(RunSpec::spmv(&a, &[1.0; 96], &mapping)).unwrap_err();
    assert!(matches!(err, SimError::MappingMismatch(_)));
    assert!(err.to_string().contains("PEs"));
}

#[test]
fn mapping_for_wrong_matrix_is_rejected() {
    let a = small();
    let b = banded(&BandedConfig { n: 64, ..Default::default() });
    let cfg = HwConfig::tiny();
    let mapping_for_b = LocalityMapping::default().map(&b, &cfg.shape);
    let err = Machine::new(cfg).run(RunSpec::spmv(&a, &[1.0; 96], &mapping_for_b)).unwrap_err();
    assert!(matches!(err, SimError::MappingMismatch(_)));
}

#[test]
fn degenerate_configs_rejected_not_crashed() {
    let mut zero_lp = HwConfig::tiny();
    zero_lp.l_p = 0;
    assert!(matches!(
        Accelerator::builder().hw_config(zero_lp).build(),
        Err(SimError::BadConfig(_))
    ));

    let mut tiny_rows = HwConfig::tiny();
    tiny_rows.timing.row_bytes = 8; // cannot hold even one (col, value) pair
    assert!(Accelerator::builder().hw_config(tiny_rows).build().is_err());
}

#[test]
fn corrupted_matrix_market_streams_are_typed_errors() {
    let cases = [
        "",                                                                   // empty
        "%%MatrixMarket matrix coordinate real general\n",                    // no size line
        "%%MatrixMarket matrix coordinate real general\nx y z\n",             // junk size
        "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n",    // out of range
        "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",        // missing value
        "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n", // unsupported type
    ];
    for text in cases {
        match mmio::read_str(text) {
            Err(MatrixError::Parse { .. }) => {}
            Err(other) => panic!("{text:?}: expected parse error, got {other}"),
            Ok(_) => panic!("{text:?}: corrupted stream parsed successfully"),
        }
    }
}

#[test]
fn accelerator_propagates_dimension_errors() {
    let a = small();
    let accel = Accelerator::builder()
        .hw_config(HwConfig::tiny())
        .mapping(MappingChoice::Naive { seed: 1 })
        .build()
        .unwrap();
    let err = accel.spmv(&a, &[1.0; 5]).unwrap_err();
    assert!(matches!(err, SimError::DimensionMismatch { expected: 96, actual: 5 }));
}

#[test]
fn error_messages_are_informative() {
    // Every error Display must mention the offending quantity.
    let e = SimError::DimensionMismatch { expected: 10, actual: 3 };
    assert!(e.to_string().contains("10") && e.to_string().contains('3'));
    let e = SimError::ValidationFailed { index: 7, simulated: 1.0, expected: 2.0 };
    assert!(e.to_string().contains('7'));
}
