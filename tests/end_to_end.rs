//! End-to-end integration tests: the full pipeline — suite generation,
//! mapping, cycle-level simulation, oracle validation, energy pricing —
//! across matrices, mappings and machine shapes.

use spacea::arch::{HwConfig, Machine, RunSpec};
use spacea::core::{Accelerator, MappingChoice};
use spacea::mapping::{LocalityMapping, MachineShape, MappingStrategy, NaiveMapping};
use spacea::matrix::suite;

fn x_for(n: usize) -> Vec<f64> {
    (0..n).map(|i| 0.5 + (i % 11) as f64 * 0.3).collect()
}

#[test]
fn every_suite_matrix_validates_with_both_mappings() {
    let hw = HwConfig::tiny();
    let machine = Machine::new(hw.clone());
    for entry in suite::entries() {
        let a = entry.generate(512);
        let x = x_for(a.cols());
        for (name, mapping) in [
            ("naive", NaiveMapping::default().map(&a, &hw.shape)),
            ("proposed", LocalityMapping::default().map(&a, &hw.shape)),
        ] {
            let r = machine
                .run(RunSpec::spmv(&a, &x, &mapping))
                .unwrap_or_else(|e| panic!("{} + {name}: {e}", entry.name))
                .into_report();
            assert!(r.validated, "{} + {name} failed validation", entry.name);
            assert!(r.cycles > 0);
            assert_eq!(
                r.pe_work.iter().sum::<u64>() as usize,
                a.nnz(),
                "{} + {name}: every non-zero processed exactly once",
                entry.name
            );
        }
    }
}

#[test]
fn iterative_spmv_feeds_output_back() {
    // Power-iteration style: y_{k+1} = A y_k, three rounds through the
    // accelerator with the mapping computed once.
    let entry = suite::entry_by_name("xenon2").expect("known matrix");
    let a = entry.generate(512);
    let accel = Accelerator::builder().hw_config(HwConfig::tiny()).build().unwrap();
    let mapping = accel.map(&a);

    let mut x = x_for(a.cols());
    let mut oracle = x.clone();
    for round in 0..3 {
        let run = accel.spmv_mapped(&a, &x, &mapping).expect("iteration validates");
        // Normalize to keep values in range.
        let norm = run.report.output.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-30);
        x = run.report.output.iter().map(|v| v / norm).collect();
        let oracle_next = a.spmv(&oracle);
        let onorm = oracle_next.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-30);
        oracle = oracle_next.iter().map(|v| v / onorm).collect();
        for (i, (s, o)) in x.iter().zip(&oracle).enumerate() {
            assert!((s - o).abs() < 1e-6, "round {round}, element {i}: sim {s} vs oracle {o}");
        }
    }
}

#[test]
fn multi_cube_shapes_validate() {
    let entry = suite::entry_by_name("cant").expect("known matrix");
    let a = entry.generate(512);
    let x = x_for(a.cols());
    for cubes in [1usize, 2, 4] {
        let shape =
            MachineShape { cubes, vaults_per_cube: 4, product_bgs_per_vault: 2, banks_per_bg: 2 };
        let hw = HwConfig::with_shape(shape);
        let mapping = LocalityMapping::default().map(&a, &shape);
        let r =
            Machine::new(hw).run(RunSpec::spmv(&a, &x, &mapping)).expect("validates").into_report();
        assert!(r.validated, "{cubes} cubes failed");
    }
}

#[test]
fn accelerator_energy_consistent_with_report() {
    let entry = suite::entry_by_name("rma10").expect("known matrix");
    let a = entry.generate(512);
    let x = x_for(a.cols());
    let accel = Accelerator::builder()
        .hw_config(HwConfig::tiny())
        .mapping(MappingChoice::Naive { seed: 1 })
        .build()
        .unwrap();
    let run = accel.spmv(&a, &x).unwrap();
    // Re-pricing the activity must reproduce the breakdown exactly.
    let again = accel.energy_params().breakdown(&run.report.activity, &accel.static_config());
    assert_eq!(run.energy, again);
    assert!(run.energy.total_j() > 0.0);
    assert!(run.energy.static_j > 0.0);
}

#[test]
fn sparser_cam_configuration_never_breaks_correctness() {
    // Correctness must be invariant to any performance knob.
    let entry = suite::entry_by_name("lhr71").expect("known matrix");
    let a = entry.generate(512);
    let x = x_for(a.cols());
    let shape = MachineShape::tiny();
    let mapping = LocalityMapping::default().map(&a, &shape);
    for (l1_sets, l2_sets, tsv_latency, dedup) in
        [(1usize, 1usize, 16u64, false), (4096, 8192, 1, true), (32, 2048, 4, true)]
    {
        let mut hw = HwConfig::with_shape(shape);
        hw.l1_cam.sets = l1_sets;
        hw.l2_cam.sets = l2_sets;
        hw.tsv_latency = tsv_latency;
        hw.ldq_dedup = dedup;
        let r =
            Machine::new(hw).run(RunSpec::spmv(&a, &x, &mapping)).expect("validates").into_report();
        assert!(r.validated);
    }
}

#[test]
fn report_metrics_are_internally_consistent() {
    let entry = suite::entry_by_name("consph").expect("known matrix");
    let a = entry.generate(512);
    let x = x_for(a.cols());
    let hw = HwConfig::tiny();
    let mapping = LocalityMapping::default().map(&a, &hw.shape);
    let r = Machine::new(hw.clone()).run(RunSpec::spmv(&a, &x, &mapping)).unwrap().into_report();

    assert_eq!(r.activity.cycles, r.cycles);
    assert!((r.seconds - r.cycles as f64 * 1e-9).abs() < 1e-15);
    assert_eq!(r.pe_work.len(), hw.shape.product_pes());
    assert!(r.normalized_workload > 0.0 && r.normalized_workload <= 1.0);
    assert!(r.l1_hit_rate >= 0.0 && r.l1_hit_rate <= 1.0);
    assert!(r.l2_hit_rate >= 0.0 && r.l2_hit_rate <= 1.0);
    assert_eq!(r.tsv_bytes, r.activity.tsv_bytes);
    assert_eq!(r.noc_byte_hops, r.activity.noc_byte_hops);
    // Each non-zero needs one product FPU op; each non-empty row one
    // accumulation op.
    let nonempty = (0..a.rows()).filter(|&i| a.row_nnz(i) > 0).count();
    assert_eq!(r.activity.fpu_ops as usize, a.nnz() + nonempty);
}
